package plan

import (
	"llmsql/internal/expr"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// Options tunes the optimizer rule pipeline.
type Options struct {
	// LimitPushdown enables the advisory LIMIT hint on scans (see
	// pushLimits). The hint never changes results — sources treat it as
	// permission to stop early, and the executor's LimitNode still
	// enforces the real limit — so disabling it only serves ablation and
	// debugging.
	LimitPushdown bool
	// BindJoin lets the join planner choose the bind strategy: drain the
	// outer join side, push its distinct key values into the build side's
	// scan (see planJoins). Like every pushdown it never changes results —
	// the executor drops rows for keys that were never bound — so
	// disabling it only serves ablation and debugging.
	BindJoin bool
}

// DefaultOptions enables every rule.
func DefaultOptions() Options { return Options{LimitPushdown: true, BindJoin: true} }

// Optimize applies the rule pipeline: constant folding in filters, predicate
// pushdown (into join sides and scans, turning cross joins with equality
// predicates into hash joins), join-key extraction, projection pruning, and
// limit-hint pushdown.
func Optimize(n Node) Node { return OptimizeOpts(n, DefaultOptions()) }

// OptimizeOpts is Optimize with explicit rule options.
func OptimizeOpts(n Node, opts Options) Node {
	n = foldFilters(n)
	n = pushdown(n)
	n = extractJoinKeys(n)
	pruneColumns(n, nil)
	if opts.LimitPushdown {
		pushLimits(n)
	}
	return n
}

// ---- constant folding ----

// foldFilters removes always-true conjuncts and replaces always-false
// filters with empty inputs.
func foldFilters(n Node) Node {
	switch x := n.(type) {
	case *FilterNode:
		x.Child = foldFilters(x.Child)
		var kept []sql.Expr
		for _, c := range sql.SplitConjuncts(x.Pred) {
			v, ok := constValue(c)
			if !ok {
				kept = append(kept, c)
				continue
			}
			switch rel.TristateOf(v) {
			case rel.True:
				// drop
			default:
				// FALSE or UNKNOWN: the filter never passes.
				return &ValuesNode{Out: x.Child.Schema()}
			}
		}
		if len(kept) == 0 {
			return x.Child
		}
		x.Pred = sql.JoinConjuncts(kept)
		return x
	default:
		replaceChildren(n, foldFilters)
		return n
	}
}

// constValue evaluates e when it references no columns.
func constValue(e sql.Expr) (rel.Value, bool) {
	if len(sql.ColumnRefs(e)) > 0 {
		return rel.Value{}, false
	}
	c, err := expr.Compile(e, rel.Schema{})
	if err != nil {
		return rel.Value{}, false
	}
	v, err := c.Eval(nil)
	if err != nil {
		return rel.Value{}, false
	}
	return v, true
}

// replaceChildren rewrites each child of n in place using f. Nodes are
// pointer types so mutation is safe during optimization.
func replaceChildren(n Node, f func(Node) Node) {
	switch x := n.(type) {
	case *FilterNode:
		x.Child = f(x.Child)
	case *ProjectNode:
		x.Child = f(x.Child)
	case *JoinNode:
		x.Left = f(x.Left)
		x.Right = f(x.Right)
	case *AggregateNode:
		x.Child = f(x.Child)
	case *SortNode:
		x.Child = f(x.Child)
	case *LimitNode:
		x.Child = f(x.Child)
	case *DistinctNode:
		x.Child = f(x.Child)
	}
}

// ---- predicate pushdown ----

func pushdown(n Node) Node {
	switch x := n.(type) {
	case *FilterNode:
		child := pushdown(x.Child)
		remaining := pushConjuncts(child, sql.SplitConjuncts(x.Pred))
		if len(remaining) == 0 {
			return child
		}
		x.Child = child
		x.Pred = sql.JoinConjuncts(remaining)
		return x
	default:
		replaceChildren(n, pushdown)
		return n
	}
}

// pushConjuncts tries to sink each conjunct into the subtree rooted at n,
// returning the conjuncts that could not be placed.
func pushConjuncts(n Node, conjuncts []sql.Expr) []sql.Expr {
	var remaining []sql.Expr
	for _, c := range conjuncts {
		if !pushOne(n, c) {
			remaining = append(remaining, c)
		}
	}
	return remaining
}

// pushOne sinks a single conjunct as deep as possible. It reports whether
// the conjunct was absorbed.
func pushOne(n Node, c sql.Expr) bool {
	switch x := n.(type) {
	case *ScanNode:
		if !compilesOver(c, x.Schema()) {
			return false
		}
		if x.Filter == nil {
			x.Filter = c
		} else {
			x.Filter = &sql.BinaryExpr{Op: sql.OpAnd, Left: x.Filter, Right: c}
		}
		return true

	case *FilterNode:
		if pushOne(x.Child, c) {
			return true
		}
		if !compilesOver(c, x.Schema()) {
			return false
		}
		x.Pred = &sql.BinaryExpr{Op: sql.OpAnd, Left: x.Pred, Right: c}
		return true

	case *JoinNode:
		switch x.Kind {
		case KindInner, KindCross:
			if compilesOver(c, x.Left.Schema()) {
				if !pushOne(x.Left, c) {
					x.Left = &FilterNode{Child: x.Left, Pred: c}
				}
				return true
			}
			if compilesOver(c, x.Right.Schema()) {
				if !pushOne(x.Right, c) {
					x.Right = &FilterNode{Child: x.Right, Pred: c}
				}
				return true
			}
			// Cross-side predicate: attach to the join condition, which may
			// convert a cross join into an inner join.
			if compilesOver(c, x.Left.Schema().Concat(x.Right.Schema())) {
				if x.On == nil {
					x.On = c
				} else {
					x.On = &sql.BinaryExpr{Op: sql.OpAnd, Left: x.On, Right: c}
				}
				if x.Kind == KindCross {
					x.Kind = KindInner
				}
				return true
			}
			return false

		case KindLeft:
			// Only left-side predicates are safe to push below a left join.
			if compilesOver(c, x.Left.Schema()) {
				if !pushOne(x.Left, c) {
					x.Left = &FilterNode{Child: x.Left, Pred: c}
				}
				return true
			}
			return false

		case KindSemi, KindAnti:
			// Output is the left side; left-only predicates push down.
			if compilesOver(c, x.Left.Schema()) {
				if !pushOne(x.Left, c) {
					x.Left = &FilterNode{Child: x.Left, Pred: c}
				}
				return true
			}
			return false
		}
		return false

	case *DistinctNode:
		return pushOne(x.Child, c)

	default:
		// Project/Aggregate/Sort/Limit: pushing through would require
		// expression rewriting; the planner places filters below these
		// nodes already, so stop here.
		return false
	}
}

// compilesOver reports whether e type-checks against schema. Note that a
// reference ambiguous in a wider schema can become resolvable in a narrower
// one; compilation is the authoritative test.
func compilesOver(e sql.Expr, schema rel.Schema) bool {
	_, err := expr.Compile(e, schema)
	return err == nil
}

// ---- limit-hint pushdown ----

// pushLimits walks the tree and, for every LimitNode with a finite limit,
// sinks an advisory row cap of Limit+Offset toward its scan.
func pushLimits(n Node) {
	if l, ok := n.(*LimitNode); ok && l.Limit >= 0 {
		pushLimitHint(l.Child, l.Limit+l.Offset)
	}
	for _, c := range n.Children() {
		pushLimits(c)
	}
}

// pushLimitHint sinks an advisory row cap through operators that emit
// exactly one output row per input row in input order (currently only
// projections), stopping at anything that filters, reorders, blocks or
// multiplies rows. A scan keeps the tightest hint it is offered.
//
// Note that a scan's own pushed-down Filter does NOT block the hint: the
// executor re-applies that filter on the scan's output, so the rows the
// hint counts are the post-filter rows, and a source honouring the hint
// must keep producing until k rows *survive its filter* (the streaming LLM
// scan does exactly that, demand-driven).
func pushLimitHint(n Node, k int64) {
	if k <= 0 {
		// LIMIT 0 never pulls a row; there is nothing useful to hint.
		return
	}
	switch x := n.(type) {
	case *ScanNode:
		if x.Limit == 0 || k < x.Limit {
			x.Limit = k
		}
	case *ProjectNode:
		pushLimitHint(x.Child, k)
	}
}

// ---- join key extraction ----

func extractJoinKeys(n Node) Node {
	replaceChildren(n, extractJoinKeys)
	j, ok := n.(*JoinNode)
	if !ok || j.On == nil || len(j.LeftKey) > 0 {
		return n
	}
	var residual []sql.Expr
	for _, c := range sql.SplitConjuncts(j.On) {
		be, ok := c.(*sql.BinaryExpr)
		if !ok || be.Op != sql.OpEq {
			residual = append(residual, c)
			continue
		}
		l, r := be.Left, be.Right
		switch {
		case compilesOver(l, j.Left.Schema()) && compilesOver(r, j.Right.Schema()):
			j.LeftKey = append(j.LeftKey, l)
			j.RightKey = append(j.RightKey, r)
		case compilesOver(r, j.Left.Schema()) && compilesOver(l, j.Right.Schema()):
			j.LeftKey = append(j.LeftKey, r)
			j.RightKey = append(j.RightKey, l)
		default:
			residual = append(residual, c)
		}
	}
	j.Residual = sql.JoinConjuncts(residual)
	return n
}

// ---- projection pruning ----

// colID identifies a column by binding table and name.
type colID struct{ table, name string }

// pruneColumns walks the tree computing, for each scan, the set of columns
// any ancestor consumes; needed == nil means "all columns".
func pruneColumns(n Node, needed map[colID]bool) {
	switch x := n.(type) {
	case *ScanNode:
		if needed == nil {
			return
		}
		// The source must also see the columns its own pushed filter reads.
		for _, ref := range refsOf(x.Filter, x.Schema()) {
			needed[ref] = true
		}
		mask := make([]bool, x.Schema().Len())
		for i, c := range x.Schema().Columns {
			mask[i] = needed[colID{c.Table, c.Name}] || c.Key
		}
		x.Needed = mask

	case *FilterNode:
		child := addRefs(needed, x.Pred, x.Child.Schema())
		pruneColumns(x.Child, child)

	case *ProjectNode:
		// A projection resets the requirement: only its expressions' refs
		// matter below it.
		child := map[colID]bool{}
		for _, e := range x.Exprs {
			for _, ref := range refsOf(e, x.Child.Schema()) {
				child[ref] = true
			}
		}
		pruneColumns(x.Child, child)

	case *JoinNode:
		left := cloneNeed(needed)
		right := cloneNeed(needed)
		for _, e := range x.LeftKey {
			left = addRefs(left, e, x.Left.Schema())
		}
		for _, e := range x.RightKey {
			right = addRefs(right, e, x.Right.Schema())
		}
		both := x.Left.Schema().Concat(x.Right.Schema())
		for _, e := range []sql.Expr{x.On, x.Residual} {
			if e == nil {
				continue
			}
			for _, ref := range refsOf(e, both) {
				if left != nil {
					left[ref] = true
				}
				if right != nil {
					right[ref] = true
				}
			}
		}
		if x.Kind == KindSemi || x.Kind == KindAnti {
			// Right side only feeds the key.
			if right != nil {
				r2 := map[colID]bool{}
				for _, e := range x.RightKey {
					r2 = addRefs(r2, e, x.Right.Schema())
				}
				right = r2
			}
		}
		pruneColumns(x.Left, left)
		pruneColumns(x.Right, right)

	case *AggregateNode:
		child := map[colID]bool{}
		for _, g := range x.GroupBy {
			for _, ref := range refsOf(g, x.Child.Schema()) {
				child[ref] = true
			}
		}
		for _, a := range x.Aggs {
			if a.Arg != nil {
				for _, ref := range refsOf(a.Arg, x.Child.Schema()) {
					child[ref] = true
				}
			}
		}
		pruneColumns(x.Child, child)

	case *SortNode:
		pruneColumns(x.Child, needed)
	case *LimitNode:
		pruneColumns(x.Child, needed)
	case *DistinctNode:
		pruneColumns(x.Child, needed)
	case *ValuesNode:
		// nothing to prune
	}
}

func cloneNeed(m map[colID]bool) map[colID]bool {
	if m == nil {
		return nil
	}
	out := make(map[colID]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// addRefs returns needed plus the refs of e resolved against schema; a nil
// map stays nil ("all needed").
func addRefs(needed map[colID]bool, e sql.Expr, schema rel.Schema) map[colID]bool {
	if needed == nil {
		return nil
	}
	out := cloneNeed(needed)
	for _, ref := range refsOf(e, schema) {
		out[ref] = true
	}
	return out
}

// refsOf resolves every column reference in e against schema and returns
// the identities of the columns it touches.
func refsOf(e sql.Expr, schema rel.Schema) []colID {
	if e == nil {
		return nil
	}
	var out []colID
	for _, cr := range sql.ColumnRefs(e) {
		if idx, err := schema.Resolve(cr.Table, cr.Name); err == nil {
			c := schema.Col(idx)
			out = append(out, colID{c.Table, c.Name})
		}
	}
	return out
}
