// Package storage implements the classical in-memory row store used both as
// the ground-truth database and as the baseline the LLM-storage engine is
// compared against. It provides a catalog of heap tables, insertion with type
// checking, full scans, equality (hash) indexes, and CSV import/export.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"llmsql/internal/rel"
)

// DB is a catalog of tables. It is safe for concurrent readers; writes take
// an exclusive lock.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable registers a new table with the given schema. Column table
// qualifiers are overwritten with the table name.
func (db *DB) CreateTable(name string, schema rel.Schema) (*Table, error) {
	name = strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	t := &Table{name: name, schema: schema.Rename(name), indexes: make(map[string]*HashIndex)}
	db.tables[name] = t
	return t, nil
}

// DropTable removes a table; it is not an error if absent.
func (db *DB) DropTable(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.tables, strings.ToLower(name))
}

// Table returns the named table or an error.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %q", name)
	}
	return t, nil
}

// HasTable reports whether the table exists.
func (db *DB) HasTable(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.tables[strings.ToLower(name)]
	return ok
}

// TableNames returns the sorted list of table names.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table is a heap of rows plus optional hash indexes.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  rel.Schema
	rows    []rel.Row
	indexes map[string]*HashIndex // keyed by column name
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema (columns qualified with the table name).
func (t *Table) Schema() rel.Schema { return t.schema }

// RowCount returns the number of stored rows.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a row after coercing each value to the column type.
// It returns an error when the arity mismatches or a value cannot be coerced.
func (t *Table) Insert(row rel.Row) error {
	if len(row) != t.schema.Len() {
		return fmt.Errorf("storage: %s expects %d values, got %d", t.name, t.schema.Len(), len(row))
	}
	stored := make(rel.Row, len(row))
	for i, v := range row {
		cv, err := rel.Coerce(v, t.schema.Col(i).Type)
		if err != nil {
			return fmt.Errorf("storage: %s.%s: %w", t.name, t.schema.Col(i).Name, err)
		}
		stored[i] = cv
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pos := len(t.rows)
	t.rows = append(t.rows, stored)
	for _, idx := range t.indexes {
		idx.add(stored, pos)
	}
	return nil
}

// InsertAll inserts a batch, stopping at the first error.
func (t *Table) InsertAll(rows []rel.Row) error {
	for _, r := range rows {
		if err := t.Insert(r); err != nil {
			return err
		}
	}
	return nil
}

// InsertBatch appends many rows under a single lock acquisition: every row
// is coerced first, so a bad row fails the whole batch before any row is
// stored (all-or-nothing, unlike InsertAll's stop-at-first-error). This is
// the bulk-ingestion path materialized views load through.
func (t *Table) InsertBatch(rows []rel.Row) error {
	stored := make([]rel.Row, len(rows))
	for r, row := range rows {
		if len(row) != t.schema.Len() {
			return fmt.Errorf("storage: %s expects %d values, got %d (row %d)", t.name, t.schema.Len(), len(row), r)
		}
		out := make(rel.Row, len(row))
		for i, v := range row {
			cv, err := rel.Coerce(v, t.schema.Col(i).Type)
			if err != nil {
				return fmt.Errorf("storage: %s.%s (row %d): %w", t.name, t.schema.Col(i).Name, r, err)
			}
			out[i] = cv
		}
		stored[r] = out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, row := range stored {
		pos := len(t.rows)
		t.rows = append(t.rows, row)
		for _, idx := range t.indexes {
			idx.add(row, pos)
		}
	}
	return nil
}

// Scan returns a snapshot iterator over all rows. Rows must not be mutated
// by callers.
func (t *Table) Scan() *Rows {
	t.mu.RLock()
	defer t.mu.RUnlock()
	snapshot := t.rows // append-only heap: the prefix is immutable
	return &Rows{rows: snapshot}
}

// All returns a copy of the row slice header (rows shared, not copied).
func (t *Table) All() []rel.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[:len(t.rows):len(t.rows)]
}

// Truncate removes all rows and clears indexes.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = nil
	for _, idx := range t.indexes {
		idx.clear()
	}
}

// Rows is a forward-only iterator over a row snapshot.
type Rows struct {
	rows []rel.Row
	pos  int
}

// Next returns the next row, or (nil, false) at the end.
func (r *Rows) Next() (rel.Row, bool) {
	if r.pos >= len(r.rows) {
		return nil, false
	}
	row := r.rows[r.pos]
	r.pos++
	return row, true
}

// Len returns the total number of rows in the snapshot.
func (r *Rows) Len() int { return len(r.rows) }

// CreateIndex builds a hash index on the named column. Building is
// idempotent: an existing index is returned unchanged.
func (t *Table) CreateIndex(column string) (*HashIndex, error) {
	column = strings.ToLower(column)
	pos := t.schema.IndexOf(column)
	if pos < 0 {
		return nil, fmt.Errorf("storage: %s has no column %q", t.name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx, ok := t.indexes[column]; ok {
		return idx, nil
	}
	idx := &HashIndex{column: column, colPos: pos, buckets: make(map[uint64][]int)}
	for i, row := range t.rows {
		idx.add(row, i)
	}
	t.indexes[column] = idx
	return idx, nil
}

// Index returns the index on the column, or nil.
func (t *Table) Index(column string) *HashIndex {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.indexes[strings.ToLower(column)]
}

// Lookup returns the rows whose indexed column equals v, using the index
// when available and falling back to a scan.
func (t *Table) Lookup(column string, v rel.Value) ([]rel.Row, error) {
	column = strings.ToLower(column)
	if idx := t.Index(column); idx != nil {
		t.mu.RLock()
		defer t.mu.RUnlock()
		var out []rel.Row
		for _, pos := range idx.lookup(v) {
			row := t.rows[pos]
			if row[idx.colPos].IdenticalTo(v) {
				out = append(out, row)
			}
		}
		return out, nil
	}
	pos := t.schema.IndexOf(column)
	if pos < 0 {
		return nil, fmt.Errorf("storage: %s has no column %q", t.name, column)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []rel.Row
	for _, row := range t.rows {
		if row[pos].IdenticalTo(v) {
			out = append(out, row)
		}
	}
	return out, nil
}

// HashIndex is an equality index mapping value hashes to row positions.
type HashIndex struct {
	column  string
	colPos  int
	buckets map[uint64][]int
}

// Column returns the indexed column name.
func (ix *HashIndex) Column() string { return ix.column }

func (ix *HashIndex) add(row rel.Row, pos int) {
	h := row[ix.colPos].Hash()
	ix.buckets[h] = append(ix.buckets[h], pos)
}

func (ix *HashIndex) lookup(v rel.Value) []int {
	return ix.buckets[v.Hash()]
}

func (ix *HashIndex) clear() {
	ix.buckets = make(map[uint64][]int)
}
