package storage

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"llmsql/internal/rel"
)

func countrySchema() rel.Schema {
	return rel.NewSchema(
		rel.Column{Name: "name", Type: rel.TypeText, Key: true},
		rel.Column{Name: "capital", Type: rel.TypeText},
		rel.Column{Name: "population", Type: rel.TypeInt},
	)
}

func newCountryTable(t *testing.T) *Table {
	t.Helper()
	db := NewDB()
	tbl, err := db.CreateTable("country", countrySchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := []rel.Row{
		{rel.Text("France"), rel.Text("Paris"), rel.Int(68)},
		{rel.Text("Japan"), rel.Text("Tokyo"), rel.Int(125)},
		{rel.Text("Brazil"), rel.Text("Brasilia"), rel.Int(214)},
	}
	if err := tbl.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestCreateAndLookupTable(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("t", countrySchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("T", countrySchema()); err == nil {
		t.Fatal("duplicate create must fail (case-insensitive)")
	}
	if !db.HasTable("t") {
		t.Fatal("HasTable")
	}
	if _, err := db.Table("T"); err != nil {
		t.Fatal("case-insensitive lookup")
	}
	if _, err := db.Table("missing"); err == nil {
		t.Fatal("missing table must error")
	}
	db.DropTable("t")
	if db.HasTable("t") {
		t.Fatal("drop failed")
	}
}

func TestTableNamesSorted(t *testing.T) {
	db := NewDB()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := db.CreateTable(n, countrySchema()); err != nil {
			t.Fatal(err)
		}
	}
	names := db.TableNames()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Fatalf("names: %v", names)
	}
}

func TestInsertTypeChecking(t *testing.T) {
	tbl := newCountryTable(t)
	// Coercion on insert: text population.
	if err := tbl.Insert(rel.Row{rel.Text("India"), rel.Text("New Delhi"), rel.Text("1,400")}); err != nil {
		t.Fatal(err)
	}
	rows := tbl.All()
	last := rows[len(rows)-1]
	if last[2].Type() != rel.TypeInt || last[2].AsInt() != 1400 {
		t.Fatalf("coerced insert: %v", last)
	}
	// Arity error.
	if err := tbl.Insert(rel.Row{rel.Text("X")}); err == nil {
		t.Fatal("arity error expected")
	}
	// Uncoercible value.
	if err := tbl.Insert(rel.Row{rel.Text("Y"), rel.Text("Z"), rel.Text("lots")}); err == nil {
		t.Fatal("coercion error expected")
	}
}

func TestScanSnapshot(t *testing.T) {
	tbl := newCountryTable(t)
	it := tbl.Scan()
	if it.Len() != 3 {
		t.Fatalf("scan len: %d", it.Len())
	}
	// Insert during iteration must not affect the snapshot.
	if err := tbl.Insert(rel.Row{rel.Text("Kenya"), rel.Text("Nairobi"), rel.Int(54)}); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("snapshot iteration saw %d rows", n)
	}
	if tbl.RowCount() != 4 {
		t.Fatalf("row count: %d", tbl.RowCount())
	}
}

func TestHashIndexLookup(t *testing.T) {
	tbl := newCountryTable(t)
	if _, err := tbl.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	rows, err := tbl.Lookup("name", rel.Text("Japan"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1].AsText() != "Tokyo" {
		t.Fatalf("lookup: %v", rows)
	}
	// Index maintained across later inserts.
	if err := tbl.Insert(rel.Row{rel.Text("Japan"), rel.Text("Tokio?"), rel.Int(125)}); err != nil {
		t.Fatal(err)
	}
	rows, _ = tbl.Lookup("name", rel.Text("Japan"))
	if len(rows) != 2 {
		t.Fatalf("index not maintained: %v", rows)
	}
	// Missing value.
	rows, _ = tbl.Lookup("name", rel.Text("Atlantis"))
	if len(rows) != 0 {
		t.Fatalf("phantom rows: %v", rows)
	}
	// Unindexed column falls back to scan.
	rows, err = tbl.Lookup("capital", rel.Text("Paris"))
	if err != nil || len(rows) != 1 {
		t.Fatalf("scan fallback: %v %v", rows, err)
	}
	if _, err := tbl.Lookup("nope", rel.Text("x")); err == nil {
		t.Fatal("unknown column must error")
	}
	if _, err := tbl.CreateIndex("nope"); err == nil {
		t.Fatal("index on unknown column must error")
	}
	// Idempotent index creation.
	ix1 := tbl.Index("name")
	ix2, err := tbl.CreateIndex("name")
	if err != nil || ix1 != ix2 {
		t.Fatal("CreateIndex must be idempotent")
	}
}

func TestTruncate(t *testing.T) {
	tbl := newCountryTable(t)
	if _, err := tbl.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	tbl.Truncate()
	if tbl.RowCount() != 0 {
		t.Fatal("truncate")
	}
	rows, _ := tbl.Lookup("name", rel.Text("France"))
	if len(rows) != 0 {
		t.Fatal("index not cleared")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := newCountryTable(t)
	var buf bytes.Buffer
	if err := tbl.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	tbl2, err := db.CreateTable("country2", countrySchema())
	if err != nil {
		t.Fatal(err)
	}
	n, err := tbl2.ImportCSV(&buf)
	if err != nil || n != 3 {
		t.Fatalf("import: %d %v", n, err)
	}
	if tbl2.RowCount() != 3 {
		t.Fatal("row count after import")
	}
	a, b := tbl.All(), tbl2.All()
	for i := range a {
		if a[i].AllKey() != b[i].AllKey() {
			t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestImportCSVColumnMapping(t *testing.T) {
	db := NewDB()
	tbl, err := db.CreateTable("c", countrySchema())
	if err != nil {
		t.Fatal(err)
	}
	// Reordered header, extra column, missing capital.
	csvData := "population,extra,name\n68,x,France\n,y,Narnia\n"
	n, err := tbl.ImportCSV(strings.NewReader(csvData))
	if err != nil || n != 2 {
		t.Fatalf("import: %d %v", n, err)
	}
	rows := tbl.All()
	if rows[0][0].AsText() != "France" || rows[0][2].AsInt() != 68 {
		t.Fatalf("mapped row: %v", rows[0])
	}
	if !rows[0][1].IsNull() {
		t.Fatalf("missing column must be NULL: %v", rows[0])
	}
	if !rows[1][2].IsNull() {
		t.Fatalf("empty int must be NULL: %v", rows[1])
	}
}

func TestImportCSVBadValue(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("c", countrySchema())
	_, err := tbl.ImportCSV(strings.NewReader("name,population\nX,notanumber\n"))
	if err == nil {
		t.Fatal("bad value must error")
	}
}

// Property: inserting N valid rows yields RowCount N and scan sees them all
// in order.
func TestInsertScanProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) > 200 {
			vals = vals[:200]
		}
		db := NewDB()
		tbl, err := db.CreateTable("p", rel.NewSchema(
			rel.Column{Name: "id", Type: rel.TypeInt},
		))
		if err != nil {
			return false
		}
		for _, v := range vals {
			if err := tbl.Insert(rel.Row{rel.Int(v)}); err != nil {
				return false
			}
		}
		if tbl.RowCount() != len(vals) {
			return false
		}
		it := tbl.Scan()
		for i := 0; ; i++ {
			row, ok := it.Next()
			if !ok {
				return i == len(vals)
			}
			if row[0].AsInt() != vals[i] {
				return false
			}
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: index lookup agrees with a full scan filter for random data.
func TestIndexScanAgreementProperty(t *testing.T) {
	f := func(keys []uint8, probe uint8) bool {
		db := NewDB()
		tbl, err := db.CreateTable("p", rel.NewSchema(
			rel.Column{Name: "k", Type: rel.TypeInt},
			rel.Column{Name: "pos", Type: rel.TypeInt},
		))
		if err != nil {
			return false
		}
		for i, k := range keys {
			if err := tbl.Insert(rel.Row{rel.Int(int64(k)), rel.Int(int64(i))}); err != nil {
				return false
			}
		}
		if _, err := tbl.CreateIndex("k"); err != nil {
			return false
		}
		indexed, err := tbl.Lookup("k", rel.Int(int64(probe)))
		if err != nil {
			return false
		}
		want := 0
		for _, k := range keys {
			if k == probe {
				want++
			}
		}
		return len(indexed) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertScan(t *testing.T) {
	db := NewDB()
	tbl, _ := db.CreateTable("c", rel.NewSchema(rel.Column{Name: "n", Type: rel.TypeInt}))
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 100; i++ {
				if e := tbl.Insert(rel.Row{rel.Int(int64(g*1000 + i))}); e != nil {
					err = e
				}
			}
			done <- err
		}(g)
	}
	for g := 0; g < 4; g++ {
		go func() {
			var err error
			for i := 0; i < 50; i++ {
				it := tbl.Scan()
				n := 0
				for {
					if _, ok := it.Next(); !ok {
						break
					}
					n++
				}
				if n > 400 {
					err = fmt.Errorf("saw %d rows", n)
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if tbl.RowCount() != 400 {
		t.Fatalf("final count: %d", tbl.RowCount())
	}
}
