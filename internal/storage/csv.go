package storage

import (
	"encoding/csv"
	"fmt"
	"io"

	"llmsql/internal/rel"
)

// ExportCSV writes the table (header + rows) to w in CSV form. NULL values
// are written as empty fields.
func (t *Table) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.schema.Names()); err != nil {
		return err
	}
	t.mu.RLock()
	rows := t.rows
	t.mu.RUnlock()
	record := make([]string, t.schema.Len())
	for _, row := range rows {
		for i, v := range row {
			if v.IsNull() {
				record[i] = ""
			} else {
				record[i] = v.String()
			}
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reads CSV data with a header row and inserts every record,
// mapping header names to schema columns (extra CSV columns are ignored,
// missing ones become NULL). It returns the number of rows inserted.
func (t *Table) ImportCSV(r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("storage: reading CSV header: %w", err)
	}
	// Map schema column position -> CSV field position (-1 when absent).
	fieldOf := make([]int, t.schema.Len())
	for i := range fieldOf {
		fieldOf[i] = -1
	}
	for fi, h := range header {
		if ci := t.schema.IndexOf(h); ci >= 0 {
			fieldOf[ci] = fi
		}
	}
	n := 0
	for {
		record, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("storage: reading CSV record: %w", err)
		}
		row := make(rel.Row, t.schema.Len())
		for ci := range row {
			fi := fieldOf[ci]
			if fi < 0 || fi >= len(record) {
				row[ci] = rel.NullOf(t.schema.Col(ci).Type)
				continue
			}
			v, err := rel.ParseTyped(record[fi], t.schema.Col(ci).Type)
			if err != nil {
				return n, fmt.Errorf("storage: row %d column %s: %w", n+1, t.schema.Col(ci).Name, err)
			}
			row[ci] = v
		}
		if err := t.Insert(row); err != nil {
			return n, err
		}
		n++
	}
}
