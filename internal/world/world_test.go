package world

import (
	"testing"

	"llmsql/internal/rel"
)

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(Config{Seed: 7})
	w2 := Generate(Config{Seed: 7})
	for _, name := range w1.DomainNames() {
		d1, d2 := w1.Domain(name), w2.Domain(name)
		if len(d1.Entities) != len(d2.Entities) {
			t.Fatalf("%s: entity counts differ", name)
		}
		for i := range d1.Entities {
			if d1.Entities[i].Row.AllKey() != d2.Entities[i].Row.AllKey() {
				t.Fatalf("%s entity %d differs between runs", name, i)
			}
		}
	}
	w3 := Generate(Config{Seed: 8})
	if w3.Domain("country").Entities[0].Key == w1.Domain("country").Entities[0].Key &&
		w3.Domain("country").Entities[1].Key == w1.Domain("country").Entities[1].Key &&
		w3.Domain("country").Entities[2].Key == w1.Domain("country").Entities[2].Key {
		t.Fatal("different seeds produced identical worlds")
	}
}

func TestDomainSizesAndDefaults(t *testing.T) {
	w := Generate(Config{Seed: 1})
	sizes := map[string]int{"country": 180, "movie": 400, "laureate": 250, "company": 300}
	for name, want := range sizes {
		d := w.Domain(name)
		if d == nil {
			t.Fatalf("missing domain %s", name)
		}
		if len(d.Entities) != want {
			t.Fatalf("%s: %d entities, want %d", name, len(d.Entities), want)
		}
	}
	w = Generate(Config{Seed: 1, Countries: 10, Movies: 20, Laureates: 5, Companies: 8})
	if len(w.Domain("country").Entities) != 10 || len(w.Domain("movie").Entities) != 20 {
		t.Fatal("custom sizes ignored")
	}
}

func TestKeysUniqueWithinDomain(t *testing.T) {
	w := Generate(Config{Seed: 42})
	for _, name := range w.DomainNames() {
		d := w.Domain(name)
		seen := map[string]bool{}
		for _, e := range d.Entities {
			if seen[e.Key] {
				t.Fatalf("%s: duplicate key %q", name, e.Key)
			}
			seen[e.Key] = true
			if e.Key != e.Row[0].AsText() {
				t.Fatalf("%s: key %q != first column %q", name, e.Key, e.Row[0].AsText())
			}
		}
	}
}

func TestProminenceMonotone(t *testing.T) {
	w := Generate(Config{Seed: 3})
	d := w.Domain("movie")
	for i := 1; i < len(d.Entities); i++ {
		if d.Entities[i].Prominence > d.Entities[i-1].Prominence {
			t.Fatalf("prominence not monotone at %d", i)
		}
	}
	if d.Entities[0].Prominence != 1.0 {
		t.Fatalf("top prominence: %f", d.Entities[0].Prominence)
	}
	if last := d.Entities[len(d.Entities)-1].Prominence; last <= 0 || last >= 1 {
		t.Fatalf("tail prominence out of range: %f", last)
	}
}

func TestForeignKeysResolve(t *testing.T) {
	w := Generate(Config{Seed: 5})
	countries := map[string]bool{}
	for _, e := range w.Domain("country").Entities {
		countries[e.Key] = true
	}
	for _, dom := range []string{"movie", "laureate", "company"} {
		d := w.Domain(dom)
		ci := d.Schema.IndexOf("country")
		if ci < 0 {
			t.Fatalf("%s has no country column", dom)
		}
		for _, e := range d.Entities {
			if !countries[e.Row[ci].AsText()] {
				t.Fatalf("%s %q references unknown country %q", dom, e.Key, e.Row[ci].AsText())
			}
		}
	}
}

func TestRowsMatchSchemaTypes(t *testing.T) {
	w := Generate(Config{Seed: 9})
	for _, name := range w.DomainNames() {
		d := w.Domain(name)
		for _, e := range d.Entities {
			if len(e.Row) != d.Schema.Len() {
				t.Fatalf("%s: row width %d != schema %d", name, len(e.Row), d.Schema.Len())
			}
			for i, v := range e.Row {
				if v.IsNull() {
					continue
				}
				want := d.Schema.Col(i).Type
				if v.Type() != want {
					t.Fatalf("%s.%s: value type %v != %v", name, d.Schema.Col(i).Name, v.Type(), want)
				}
			}
		}
	}
}

func TestLoadDB(t *testing.T) {
	w := Generate(Config{Seed: 11, Countries: 20, Movies: 30, Laureates: 10, Companies: 10})
	db, err := LoadDB(w)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("country")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.RowCount() != 20 {
		t.Fatalf("country rows: %d", tbl.RowCount())
	}
	if !tbl.Schema().Col(0).Key {
		t.Fatal("key flag lost in load")
	}
	for _, name := range []string{"movie", "laureate", "company"} {
		if !db.HasTable(name) {
			t.Fatalf("missing table %s", name)
		}
	}
}

func TestEntityLookupAndDecile(t *testing.T) {
	w := Generate(Config{Seed: 2, Countries: 50})
	d := w.Domain("country")
	top := d.Entities[0]
	if e := d.Entity(top.Key); e == nil || e.Key != top.Key {
		t.Fatal("Entity lookup failed")
	}
	if e := d.Entity("  " + top.Key + " "); e == nil {
		t.Fatal("Entity lookup must trim")
	}
	if d.Entity("nope") != nil {
		t.Fatal("phantom entity")
	}
	if dec := d.ProminenceDecile(top.Key); dec != 0 {
		t.Fatalf("top decile: %d", dec)
	}
	tail := d.Entities[len(d.Entities)-1]
	if dec := d.ProminenceDecile(tail.Key); dec != 9 {
		t.Fatalf("tail decile: %d", dec)
	}
	if d.ProminenceDecile("nope") != -1 {
		t.Fatal("missing key decile")
	}
}

func TestTopKeysAndDistinctValues(t *testing.T) {
	w := Generate(Config{Seed: 4, Countries: 30})
	d := w.Domain("country")
	top := d.TopKeys(5)
	if len(top) != 5 || top[0] != d.Entities[0].Key {
		t.Fatalf("top keys: %v", top)
	}
	if len(d.TopKeys(1000)) != 30 {
		t.Fatal("TopKeys must clamp")
	}
	conts := d.DistinctValues("continent")
	if len(conts) == 0 || len(conts) > 5 {
		t.Fatalf("continents: %v", conts)
	}
	for i := 1; i < len(conts); i++ {
		if conts[i-1] >= conts[i] {
			t.Fatal("distinct values must be sorted")
		}
	}
	if d.DistinctValues("nope") != nil {
		t.Fatal("unknown column must return nil")
	}
}

func TestDirectorsRepeat(t *testing.T) {
	// GROUP BY director must be meaningful: fewer distinct directors than
	// movies.
	w := Generate(Config{Seed: 6})
	d := w.Domain("movie")
	directors := d.DistinctValues("director")
	if len(directors) >= len(d.Entities) {
		t.Fatalf("directors do not repeat: %d directors, %d movies", len(directors), len(d.Entities))
	}
}

func TestNumericRangesSane(t *testing.T) {
	w := Generate(Config{Seed: 13})
	d := w.Domain("country")
	popIdx := d.Schema.IndexOf("population")
	for _, e := range d.Entities {
		pop := e.Row[popIdx]
		if pop.IsNull() || pop.AsInt() < 1 {
			t.Fatalf("bad population: %v", pop)
		}
	}
	m := w.Domain("movie")
	yearIdx := m.Schema.IndexOf("year")
	ratingIdx := m.Schema.IndexOf("rating")
	for _, e := range m.Entities {
		if y := e.Row[yearIdx].AsInt(); y < 1935 || y > 2023 {
			t.Fatalf("bad year: %d", y)
		}
		if r := e.Row[ratingIdx].AsFloat(); r < 0 || r > 10 {
			t.Fatalf("bad rating: %f", r)
		}
	}
}

func TestSchemasHaveDescriptions(t *testing.T) {
	w := Generate(Config{Seed: 1})
	for _, name := range w.DomainNames() {
		d := w.Domain(name)
		if d.Description == "" {
			t.Fatalf("%s: missing domain description", name)
		}
		for _, c := range d.Schema.Columns {
			if c.Desc == "" {
				t.Fatalf("%s.%s: missing column description", name, c.Name)
			}
		}
		if !d.Schema.Col(0).Key {
			t.Fatalf("%s: first column must be the key", name)
		}
	}
	_ = rel.TypeInt // keep the import for clarity of intent
}
