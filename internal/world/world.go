// Package world generates the synthetic world that substitutes for the
// real-world web corpus behind the paper's LLM. It produces, from one seed:
//
//   - ground-truth relations for four domains (countries, movies, laureates,
//     companies) with realistic cardinalities, key/foreign-key structure and
//     mixed attribute types, and
//   - a per-entity prominence score with a Zipf-like distribution, which the
//     simulated LLM (internal/llm) uses to decide how reliably each fact is
//     "remembered" — reproducing the head-vs-tail recall gap of real models.
package world

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"llmsql/internal/rel"
	"llmsql/internal/storage"
)

// Entity is one row of a domain with its prominence.
type Entity struct {
	// Key is the entity's primary-key value (always the first column).
	Key string
	// Row is the ground-truth tuple, aligned with the domain schema.
	Row rel.Row
	// Prominence in (0,1]: 1 is maximally famous. Zipf-distributed by rank.
	Prominence float64
}

// Domain is one synthetic relation.
type Domain struct {
	// Name is the table name.
	Name string
	// Description is a one-line natural-language description used in
	// prompts ("a sovereign country of the world").
	Description string
	// Schema declares the columns (with Desc strings for prompting).
	Schema rel.Schema
	// Entities holds the rows sorted by descending prominence.
	Entities []Entity
}

// Rows returns the ground-truth rows in prominence order.
func (d *Domain) Rows() []rel.Row {
	out := make([]rel.Row, len(d.Entities))
	for i, e := range d.Entities {
		out[i] = e.Row
	}
	return out
}

// Entity returns the entity with the given key (case-insensitive), or nil.
func (d *Domain) Entity(key string) *Entity {
	key = strings.ToLower(strings.TrimSpace(key))
	for i := range d.Entities {
		if strings.ToLower(d.Entities[i].Key) == key {
			return &d.Entities[i]
		}
	}
	return nil
}

// World is the generated universe.
type World struct {
	// Seed reproduces the world.
	Seed int64
	// Domains maps table name to domain.
	Domains map[string]*Domain
	// order preserves generation order for deterministic iteration.
	order []string
}

// Domain returns the named domain or nil.
func (w *World) Domain(name string) *Domain {
	return w.Domains[strings.ToLower(name)]
}

// DomainNames returns the domain names in generation order.
func (w *World) DomainNames() []string {
	out := make([]string, len(w.order))
	copy(out, w.order)
	return out
}

// Config sizes the world.
type Config struct {
	// Seed drives all randomness; equal seeds produce equal worlds.
	Seed int64
	// Countries, Movies, Laureates, Companies are per-domain entity counts.
	// Zero values take the defaults (180, 400, 250, 300).
	Countries int
	Movies    int
	Laureates int
	Companies int
}

func (c Config) withDefaults() Config {
	if c.Countries == 0 {
		c.Countries = 180
	}
	if c.Movies == 0 {
		c.Movies = 400
	}
	if c.Laureates == 0 {
		c.Laureates = 250
	}
	if c.Companies == 0 {
		c.Companies = 300
	}
	return c
}

// Generate builds a world from the configuration.
func Generate(cfg Config) *World {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Seed: cfg.Seed, Domains: map[string]*Domain{}}

	countries := genCountries(rng, cfg.Countries)
	w.add(countries)
	w.add(genMovies(rng, cfg.Movies, countries))
	w.add(genLaureates(rng, cfg.Laureates, countries))
	w.add(genCompanies(rng, cfg.Companies, countries))
	return w
}

func (w *World) add(d *Domain) {
	w.Domains[d.Name] = d
	w.order = append(w.order, d.Name)
}

// prominenceOf assigns the popularity score for rank i of n: 1 for the most
// famous entity, decaying convexly to 0.05 for the least famous. The score
// is relative to the domain size so that small test worlds keep the same
// head-to-tail shape as full-scale ones.
func prominenceOf(i, n int) float64 {
	if n <= 1 {
		return 1
	}
	rel := float64(i) / float64(n-1)
	return 0.05 + 0.95*math.Pow(1-rel, 1.5)
}

// LoadDB materializes the ground-truth world into a fresh row store.
func LoadDB(w *World) (*storage.DB, error) {
	db := storage.NewDB()
	for _, name := range w.order {
		d := w.Domains[name]
		tbl, err := db.CreateTable(d.Name, d.Schema)
		if err != nil {
			return nil, err
		}
		if err := tbl.InsertAll(d.Rows()); err != nil {
			return nil, fmt.Errorf("world: loading %s: %w", d.Name, err)
		}
	}
	return db, nil
}

// ---- name generation ----

var nameOnsets = []string{
	"Al", "Ba", "Ca", "Da", "El", "Fa", "Ga", "Ha", "Ista", "Jo", "Ka", "Lu",
	"Ma", "Na", "Or", "Pa", "Qua", "Ra", "Sa", "Ta", "U", "Va", "We", "Xa",
	"Ya", "Za", "Bre", "Cro", "Dri", "Fle", "Gri", "Kle", "Mon", "Nor", "Pol",
	"Ser", "Tor", "Vel",
}

var nameMids = []string{
	"ba", "da", "ga", "ka", "la", "ma", "na", "ra", "sa", "ta", "va", "za",
	"be", "de", "ge", "ke", "le", "me", "ne", "re", "se", "te", "ve", "ze",
	"bi", "di", "gi", "ki", "li", "mi", "ni", "ri", "si", "ti", "vi", "zi",
	"lo", "mo", "no", "ro", "so", "to",
}

var nameCodas = []string{
	"nia", "land", "stan", "dor", "via", "ria", "mark", "burg", "ton", "ville",
	"grad", "polis", "ia", "ea", "ora", "una", "ande", "este",
}

// makeName builds a deterministic pseudo-word; syllables controls length.
func makeName(rng *rand.Rand, syllables int) string {
	var b strings.Builder
	b.WriteString(nameOnsets[rng.Intn(len(nameOnsets))])
	for i := 0; i < syllables; i++ {
		b.WriteString(nameMids[rng.Intn(len(nameMids))])
	}
	b.WriteString(nameCodas[rng.Intn(len(nameCodas))])
	return b.String()
}

// makePersonName builds "Given Surname".
func makePersonName(rng *rand.Rand) string {
	given := []string{
		"Ada", "Boris", "Clara", "Dmitri", "Elena", "Farid", "Greta", "Hugo",
		"Ingrid", "Jonas", "Kiran", "Leila", "Marco", "Nadia", "Omar", "Priya",
		"Quentin", "Rosa", "Stefan", "Tara", "Umberto", "Vera", "Wassim",
		"Xenia", "Yuki", "Zoran",
	}
	sur := makeName(rng, 1)
	return given[rng.Intn(len(given))] + " " + sur
}

// uniqueNames draws n distinct names using gen.
func uniqueNames(rng *rand.Rand, n int, gen func(*rand.Rand) string) []string {
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		name := gen(rng)
		if seen[name] {
			// Disambiguate deterministically rather than looping forever.
			name = fmt.Sprintf("%s %c.", name, 'A'+rng.Intn(26))
			if seen[name] {
				continue
			}
		}
		seen[name] = true
		out = append(out, name)
	}
	return out
}

// pickWeighted picks an element favouring the front of the slice (so famous
// countries accumulate more movies/companies, like the real world).
func pickWeighted(rng *rand.Rand, n int) int {
	// Squaring a uniform variate skews toward 0.
	u := rng.Float64()
	return int(u * u * float64(n))
}

// ---- domains ----

var continents = []string{"Europe", "Asia", "Africa", "Americas", "Oceania"}

func genCountries(rng *rand.Rand, n int) *Domain {
	schema := rel.NewSchema(
		rel.Column{Name: "name", Type: rel.TypeText, Key: true, Desc: "the country's common English name"},
		rel.Column{Name: "capital", Type: rel.TypeText, Desc: "the capital city"},
		rel.Column{Name: "continent", Type: rel.TypeText, Desc: "the continent (Europe, Asia, Africa, Americas or Oceania)"},
		rel.Column{Name: "population", Type: rel.TypeInt, Desc: "population in millions of inhabitants"},
		rel.Column{Name: "area", Type: rel.TypeFloat, Desc: "land area in thousands of square kilometres"},
		rel.Column{Name: "gdp", Type: rel.TypeFloat, Desc: "gross domestic product in billions of US dollars"},
	)
	names := uniqueNames(rng, n, func(r *rand.Rand) string { return makeName(r, 1) })
	capitals := uniqueNames(rng, n, func(r *rand.Rand) string { return makeName(r, 2) })
	d := &Domain{
		Name:        "country",
		Description: "a sovereign country of the world",
		Schema:      schema,
	}
	for i := 0; i < n; i++ {
		// Population follows a log-normal-ish skew; big countries first.
		pop := int64(math.Exp(rng.NormFloat64()*1.3+3.2)) + 1
		area := math.Exp(rng.NormFloat64()*1.5 + 5.0)
		gdp := float64(pop) * math.Exp(rng.NormFloat64()*0.9+1.8)
		row := rel.Row{
			rel.Text(names[i]),
			rel.Text(capitals[i]),
			rel.Text(continents[rng.Intn(len(continents))]),
			rel.Int(pop),
			rel.Float(round1(area)),
			rel.Float(round1(gdp)),
		}
		d.Entities = append(d.Entities, Entity{Key: names[i], Row: row, Prominence: prominenceOf(i, n)})
	}
	return d
}

var genres = []string{"Drama", "Comedy", "Thriller", "Documentary", "Animation", "Action", "Romance", "Horror"}

var titleWords = [][]string{
	{"The", "A", "Last", "First", "Dark", "Silent", "Broken", "Hidden", "Lost", "Eternal", "Golden", "Crimson"},
	{"Garden", "River", "Mirror", "Empire", "Journey", "Winter", "Harvest", "Letter", "Horizon", "Station", "Island", "Orchard"},
	{"of Dreams", "of Stone", "at Dawn", "in Exile", "of Glass", "of the North", "Below", "Ascending", "Reborn", "Undone", "", ""},
}

func makeTitle(rng *rand.Rand) string {
	parts := []string{
		titleWords[0][rng.Intn(len(titleWords[0]))],
		titleWords[1][rng.Intn(len(titleWords[1]))],
	}
	if tail := titleWords[2][rng.Intn(len(titleWords[2]))]; tail != "" {
		parts = append(parts, tail)
	}
	return strings.Join(parts, " ")
}

func genMovies(rng *rand.Rand, n int, countries *Domain) *Domain {
	schema := rel.NewSchema(
		rel.Column{Name: "title", Type: rel.TypeText, Key: true, Desc: "the film's title"},
		rel.Column{Name: "director", Type: rel.TypeText, Desc: "the director's full name"},
		rel.Column{Name: "year", Type: rel.TypeInt, Desc: "the release year"},
		rel.Column{Name: "genre", Type: rel.TypeText, Desc: "the primary genre"},
		rel.Column{Name: "rating", Type: rel.TypeFloat, Desc: "average critic rating from 0 to 10"},
		rel.Column{Name: "country", Type: rel.TypeText, Desc: "the country of production (a country name)"},
	)
	titles := uniqueNames(rng, n, makeTitle)
	// A pool of directors smaller than the movie count so directors repeat,
	// enabling meaningful GROUP BY director queries.
	directors := uniqueNames(rng, n/4+1, makePersonName)
	d := &Domain{
		Name:        "movie",
		Description: "a feature film",
		Schema:      schema,
	}
	for i := 0; i < n; i++ {
		ci := pickWeighted(rng, len(countries.Entities))
		row := rel.Row{
			rel.Text(titles[i]),
			rel.Text(directors[pickWeighted(rng, len(directors))]),
			rel.Int(int64(1935 + rng.Intn(89))),
			rel.Text(genres[rng.Intn(len(genres))]),
			rel.Float(round1(3.0 + rng.Float64()*7.0)),
			countries.Entities[ci].Row[0],
		}
		d.Entities = append(d.Entities, Entity{Key: titles[i], Row: row, Prominence: prominenceOf(i, n)})
	}
	return d
}

var fields = []string{"Physics", "Chemistry", "Medicine", "Literature", "Peace", "Economics"}

func genLaureates(rng *rand.Rand, n int, countries *Domain) *Domain {
	schema := rel.NewSchema(
		rel.Column{Name: "name", Type: rel.TypeText, Key: true, Desc: "the laureate's full name"},
		rel.Column{Name: "field", Type: rel.TypeText, Desc: "the prize field (Physics, Chemistry, Medicine, Literature, Peace or Economics)"},
		rel.Column{Name: "year", Type: rel.TypeInt, Desc: "the year the prize was awarded"},
		rel.Column{Name: "country", Type: rel.TypeText, Desc: "the laureate's country of birth (a country name)"},
	)
	names := uniqueNames(rng, n, makePersonName)
	d := &Domain{
		Name:        "laureate",
		Description: "a science-prize laureate",
		Schema:      schema,
	}
	for i := 0; i < n; i++ {
		ci := pickWeighted(rng, len(countries.Entities))
		row := rel.Row{
			rel.Text(names[i]),
			rel.Text(fields[rng.Intn(len(fields))]),
			rel.Int(int64(1901 + rng.Intn(123))),
			countries.Entities[ci].Row[0],
		}
		d.Entities = append(d.Entities, Entity{Key: names[i], Row: row, Prominence: prominenceOf(i, n)})
	}
	return d
}

var sectors = []string{"Technology", "Finance", "Energy", "Healthcare", "Retail", "Manufacturing", "Transport"}

func genCompanies(rng *rand.Rand, n int, countries *Domain) *Domain {
	schema := rel.NewSchema(
		rel.Column{Name: "name", Type: rel.TypeText, Key: true, Desc: "the company's registered name"},
		rel.Column{Name: "sector", Type: rel.TypeText, Desc: "the primary business sector"},
		rel.Column{Name: "revenue", Type: rel.TypeFloat, Desc: "annual revenue in billions of US dollars"},
		rel.Column{Name: "employees", Type: rel.TypeInt, Desc: "number of employees in thousands"},
		rel.Column{Name: "founded", Type: rel.TypeInt, Desc: "the founding year"},
		rel.Column{Name: "country", Type: rel.TypeText, Desc: "the country of the headquarters (a country name)"},
	)
	suffixes := []string{"Corp", "Group", "Systems", "Industries", "Labs", "Holdings", "Works", "Partners"}
	names := uniqueNames(rng, n, func(r *rand.Rand) string {
		return makeName(r, 1) + " " + suffixes[r.Intn(len(suffixes))]
	})
	d := &Domain{
		Name:        "company",
		Description: "a large multinational company",
		Schema:      schema,
	}
	for i := 0; i < n; i++ {
		ci := pickWeighted(rng, len(countries.Entities))
		row := rel.Row{
			rel.Text(names[i]),
			rel.Text(sectors[rng.Intn(len(sectors))]),
			rel.Float(round1(math.Exp(rng.NormFloat64()*1.1 + 2.0))),
			rel.Int(int64(math.Exp(rng.NormFloat64()*1.0+3.0)) + 1),
			rel.Int(int64(1860 + rng.Intn(160))),
			countries.Entities[ci].Row[0],
		}
		d.Entities = append(d.Entities, Entity{Key: names[i], Row: row, Prominence: prominenceOf(i, n)})
	}
	return d
}

func round1(f float64) float64 { return math.Round(f*10) / 10 }

// ProminenceDecile returns 0..9 for an entity's rank within its domain
// (0 = most prominent decile), used by the popularity experiment.
func (d *Domain) ProminenceDecile(key string) int {
	key = strings.ToLower(strings.TrimSpace(key))
	for i := range d.Entities {
		if strings.ToLower(d.Entities[i].Key) == key {
			return i * 10 / len(d.Entities)
		}
	}
	return -1
}

// TopKeys returns the keys of the k most prominent entities.
func (d *Domain) TopKeys(k int) []string {
	if k > len(d.Entities) {
		k = len(d.Entities)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = d.Entities[i].Key
	}
	return out
}

// DistinctValues returns the sorted distinct non-null values of a column.
func (d *Domain) DistinctValues(column string) []string {
	idx := d.Schema.IndexOf(column)
	if idx < 0 {
		return nil
	}
	seen := map[string]bool{}
	for _, e := range d.Entities {
		v := e.Row[idx]
		if !v.IsNull() {
			seen[v.AsText()] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
