package expr

import (
	"testing"
	"testing/quick"

	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

var testSchema = rel.NewSchema(
	rel.Column{Name: "a", Type: rel.TypeInt, Table: "t"},
	rel.Column{Name: "b", Type: rel.TypeFloat, Table: "t"},
	rel.Column{Name: "s", Type: rel.TypeText, Table: "t"},
	rel.Column{Name: "flag", Type: rel.TypeBool, Table: "t"},
)

func evalOn(t *testing.T, src string, row rel.Row) rel.Value {
	t.Helper()
	e, err := sql.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c, err := Compile(e, testSchema)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	v, err := c.Eval(row)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

var sampleRow = rel.Row{rel.Int(10), rel.Float(2.5), rel.Text("Hello"), rel.Bool(true)}

func TestArithmetic(t *testing.T) {
	cases := map[string]rel.Value{
		"a + 5":    rel.Int(15),
		"a - 3":    rel.Int(7),
		"a * 2":    rel.Int(20),
		"a / 4":    rel.Float(2.5),
		"a % 3":    rel.Int(1),
		"b * 2":    rel.Float(5),
		"a + b":    rel.Float(12.5),
		"-a":       rel.Int(-10),
		"a / 0":    rel.NullOf(rel.TypeFloat),
		"a % 0":    rel.NullOf(rel.TypeInt),
		"NULL + 1": rel.Null(),
	}
	for src, want := range cases {
		got := evalOn(t, src, sampleRow)
		if want.IsNull() {
			if !got.IsNull() {
				t.Errorf("%q = %v, want NULL", src, got)
			}
			continue
		}
		if !got.IdenticalTo(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestIntArithmeticStaysInt(t *testing.T) {
	e, _ := sql.ParseExpr("a + 1")
	c, err := Compile(e, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if c.Type != rel.TypeInt {
		t.Fatalf("a+1 type = %v", c.Type)
	}
	e, _ = sql.ParseExpr("a / 2")
	c, _ = Compile(e, testSchema)
	if c.Type != rel.TypeFloat {
		t.Fatalf("a/2 type = %v", c.Type)
	}
}

func TestComparisons(t *testing.T) {
	cases := map[string]rel.Value{
		"a = 10":      rel.Bool(true),
		"a <> 10":     rel.Bool(false),
		"a < 11":      rel.Bool(true),
		"a >= 10":     rel.Bool(true),
		"s = 'Hello'": rel.Bool(true),
		"s < 'I'":     rel.Bool(true),
		"a = NULL":    rel.NullOf(rel.TypeBool),
		"b > 2":       rel.Bool(true),
	}
	for src, want := range cases {
		got := evalOn(t, src, sampleRow)
		if want.IsNull() {
			if !got.IsNull() {
				t.Errorf("%q = %v, want NULL", src, got)
			}
			continue
		}
		if !got.IdenticalTo(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestBooleanLogic3VL(t *testing.T) {
	// NULL-aware AND/OR.
	cases := map[string]any{
		"flag AND a = 10": true,
		"flag AND a = 9":  false,
		"flag OR a = 9":   true,
		"NOT flag":        false,
		"flag AND NULL":   nil,
		"flag OR NULL":    true,
		"NOT NULL":        nil,
		"a = 9 AND NULL":  false, // FALSE AND UNKNOWN = FALSE
		"a = 10 OR NULL":  true,  // TRUE OR UNKNOWN = TRUE
	}
	for src, want := range cases {
		got := evalOn(t, src, sampleRow)
		if want == nil {
			if !got.IsNull() {
				t.Errorf("%q = %v, want NULL", src, got)
			}
			continue
		}
		if got.IsNull() || got.AsBool() != want.(bool) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestInBetweenLike(t *testing.T) {
	cases := map[string]any{
		"a IN (1, 10, 100)":      true,
		"a NOT IN (1, 10, 100)":  false,
		"a IN (1, 2)":            false,
		"a IN (1, NULL)":         nil, // not found + null present = UNKNOWN
		"a BETWEEN 5 AND 15":     true,
		"a NOT BETWEEN 5 AND 15": false,
		"a BETWEEN 11 AND 15":    false,
		"s LIKE 'He%'":           true,
		"s LIKE '%lo'":           true,
		"s LIKE 'H_llo'":         true,
		"s LIKE 'h%'":            false, // case-sensitive
		"s NOT LIKE 'xyz'":       true,
		"s LIKE '%'":             true,
		"NULL LIKE '%'":          nil,
	}
	for src, want := range cases {
		got := evalOn(t, src, sampleRow)
		if want == nil {
			if !got.IsNull() {
				t.Errorf("%q = %v, want NULL", src, got)
			}
			continue
		}
		if got.IsNull() || got.AsBool() != want.(bool) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestIsNull(t *testing.T) {
	if v := evalOn(t, "s IS NULL", sampleRow); v.AsBool() {
		t.Fatal("s is not null")
	}
	if v := evalOn(t, "s IS NOT NULL", sampleRow); !v.AsBool() {
		t.Fatal("s is not null (not)")
	}
	nullRow := rel.Row{rel.Null(), rel.Null(), rel.Null(), rel.Null()}
	if v := evalOn(t, "a IS NULL", nullRow); !v.AsBool() {
		t.Fatal("null detection")
	}
}

func TestCase(t *testing.T) {
	v := evalOn(t, "CASE WHEN a > 5 THEN 'big' ELSE 'small' END", sampleRow)
	if v.AsText() != "big" {
		t.Fatalf("case: %v", v)
	}
	v = evalOn(t, "CASE a WHEN 10 THEN 'ten' WHEN 20 THEN 'twenty' END", sampleRow)
	if v.AsText() != "ten" {
		t.Fatalf("simple case: %v", v)
	}
	v = evalOn(t, "CASE a WHEN 99 THEN 'x' END", sampleRow)
	if !v.IsNull() {
		t.Fatalf("case fallthrough must be NULL: %v", v)
	}
}

func TestCast(t *testing.T) {
	if v := evalOn(t, "CAST(a AS TEXT)", sampleRow); v.AsText() != "10" {
		t.Fatalf("cast int->text: %v", v)
	}
	if v := evalOn(t, "CAST('12' AS INT)", sampleRow); v.AsInt() != 12 {
		t.Fatalf("cast text->int: %v", v)
	}
	// Unparseable cast yields NULL, not an error (LLM-tolerant behaviour).
	if v := evalOn(t, "CAST('garbage' AS INT)", sampleRow); !v.IsNull() {
		t.Fatalf("bad cast should be NULL: %v", v)
	}
}

func TestConcatOperator(t *testing.T) {
	if v := evalOn(t, "s || '!' ", sampleRow); v.AsText() != "Hello!" {
		t.Fatalf("concat: %v", v)
	}
	if v := evalOn(t, "s || NULL", sampleRow); !v.IsNull() {
		t.Fatalf("concat null: %v", v)
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := map[string]rel.Value{
		"UPPER(s)":             rel.Text("HELLO"),
		"LOWER(s)":             rel.Text("hello"),
		"LENGTH(s)":            rel.Int(5),
		"TRIM('  x  ')":        rel.Text("x"),
		"SUBSTR(s, 2)":         rel.Text("ello"),
		"SUBSTR(s, 2, 3)":      rel.Text("ell"),
		"SUBSTR(s, 1, 0)":      rel.Text(""),
		"ABS(-5)":              rel.Int(5),
		"ABS(-2.5)":            rel.Float(2.5),
		"ROUND(2.567, 2)":      rel.Float(2.57),
		"ROUND(2.4)":           rel.Float(2),
		"FLOOR(2.9)":           rel.Int(2),
		"CEIL(2.1)":            rel.Int(3),
		"COALESCE(NULL, 7)":    rel.Int(7),
		"COALESCE(a, 0)":       rel.Int(10),
		"NULLIF(a, 10)":        rel.Null(),
		"NULLIF(a, 9)":         rel.Int(10),
		"CONCAT(s, ' ', 'Go')": rel.Text("Hello Go"),
	}
	for src, want := range cases {
		got := evalOn(t, src, sampleRow)
		if want.IsNull() {
			if !got.IsNull() {
				t.Errorf("%q = %v, want NULL", src, got)
			}
			continue
		}
		if !got.IdenticalTo(want) {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"missing_col",
		"NOSUCHFUNC(a)",
		"SUBSTR(s)",
		"SUM(a)", // aggregate rejected here
		"a IN (SELECT x FROM t)",
	}
	for _, src := range bad {
		e, err := sql.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(e, testSchema); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestCompileBool(t *testing.T) {
	e, _ := sql.ParseExpr("a > 5")
	pred, err := CompileBool(e, testSchema)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := pred(sampleRow)
	if err != nil || ts != rel.True {
		t.Fatalf("pred: %v %v", ts, err)
	}
	// Non-boolean predicate rejected.
	e, _ = sql.ParseExpr("a + 1")
	if _, err := CompileBool(e, testSchema); err == nil {
		t.Fatal("non-bool predicate must be rejected")
	}
}

func TestMatchLikeProperties(t *testing.T) {
	// '%' matches everything.
	f := func(s string) bool { return MatchLike(s, "%") }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Literal string matches itself when it contains no metacharacters.
	g := func(raw string) bool {
		s := ""
		for _, r := range raw {
			if r != '%' && r != '_' {
				s += string(r)
			}
		}
		return MatchLike(s, s)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatchLikeCorners(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%c", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "m%iss%pi", true},
		{"abc", "%%%", true},
		{"ab", "a__", false},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestQualifiedColumnCompile(t *testing.T) {
	v := evalOn(t, "t.a + 1", sampleRow)
	if v.AsInt() != 11 {
		t.Fatalf("qualified ref: %v", v)
	}
}
