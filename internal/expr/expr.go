// Package expr compiles SQL AST expressions into evaluators over rows.
//
// Compilation resolves column references against a schema once, infers the
// static result type, and returns a closure evaluated per row. Aggregate
// function calls are rejected here; the planner extracts them before
// compiling (see internal/plan).
package expr

import (
	"fmt"
	"math"
	"strings"

	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// Compiled is an executable expression.
type Compiled struct {
	// Type is the statically inferred result type (TypeUnknown when the
	// expression can yield any type, e.g. bare NULL).
	Type rel.DataType
	// Eval computes the expression over a row aligned with the schema the
	// expression was compiled against.
	Eval func(rel.Row) (rel.Value, error)
}

// Compile builds an evaluator for e against schema.
func Compile(e sql.Expr, schema rel.Schema) (*Compiled, error) {
	c := &compiler{schema: schema}
	return c.compile(e)
}

// CompileBool compiles e and wraps it to yield a Tristate, as needed by
// filters and join predicates.
func CompileBool(e sql.Expr, schema rel.Schema) (func(rel.Row) (rel.Tristate, error), error) {
	compiled, err := Compile(e, schema)
	if err != nil {
		return nil, err
	}
	if compiled.Type != rel.TypeBool && compiled.Type != rel.TypeUnknown {
		return nil, fmt.Errorf("expr: predicate has type %s, want BOOL", compiled.Type)
	}
	return func(r rel.Row) (rel.Tristate, error) {
		v, err := compiled.Eval(r)
		if err != nil {
			return rel.Unknown, err
		}
		return rel.TristateOf(v), nil
	}, nil
}

type compiler struct {
	schema rel.Schema
}

func (c *compiler) compile(e sql.Expr) (*Compiled, error) {
	switch x := e.(type) {
	case *sql.Literal:
		v := x.Value
		return &Compiled{Type: v.Type(), Eval: func(rel.Row) (rel.Value, error) { return v, nil }}, nil

	case *sql.Param:
		// Parameters type-check as TypeUnknown (like bare NULL) so plans can
		// be validated and cached before values are bound; evaluating an
		// unbound parameter is an error. Execution never reaches this
		// evaluator: plan.Bind substitutes typed literals first.
		p := x
		return &Compiled{Type: rel.TypeUnknown, Eval: func(rel.Row) (rel.Value, error) {
			return rel.Null(), fmt.Errorf("expr: unbound parameter %s", p)
		}}, nil

	case *sql.ColumnRef:
		idx, err := c.schema.Resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		t := c.schema.Col(idx).Type
		return &Compiled{Type: t, Eval: func(r rel.Row) (rel.Value, error) {
			if idx >= len(r) {
				return rel.Null(), fmt.Errorf("expr: row too short for column %d", idx)
			}
			return r[idx], nil
		}}, nil

	case *sql.BinaryExpr:
		return c.compileBinary(x)

	case *sql.UnaryExpr:
		return c.compileUnary(x)

	case *sql.FuncCall:
		if sql.AggregateFuncs[x.Name] {
			return nil, fmt.Errorf("expr: aggregate %s not allowed here", x.Name)
		}
		return c.compileFunc(x)

	case *sql.IsNullExpr:
		inner, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return &Compiled{Type: rel.TypeBool, Eval: func(r rel.Row) (rel.Value, error) {
			v, err := inner.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			return rel.Bool(v.IsNull() != not), nil
		}}, nil

	case *sql.InExpr:
		return c.compileIn(x)

	case *sql.BetweenExpr:
		return c.compileBetween(x)

	case *sql.LikeExpr:
		return c.compileLike(x)

	case *sql.CaseExpr:
		return c.compileCase(x)

	case *sql.CastExpr:
		inner, err := c.compile(x.X)
		if err != nil {
			return nil, err
		}
		to := x.Type
		return &Compiled{Type: to, Eval: func(r rel.Row) (rel.Value, error) {
			v, err := inner.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			out, err := rel.Coerce(v, to)
			if err != nil {
				// CAST of unparseable text yields NULL rather than aborting
				// the query: LLM-sourced values must not kill execution.
				return rel.NullOf(to), nil
			}
			return out, nil
		}}, nil

	default:
		return nil, fmt.Errorf("expr: unsupported expression %T", e)
	}
}

func (c *compiler) compileBinary(x *sql.BinaryExpr) (*Compiled, error) {
	left, err := c.compile(x.Left)
	if err != nil {
		return nil, err
	}
	right, err := c.compile(x.Right)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case sql.OpAnd, sql.OpOr:
		isAnd := x.Op == sql.OpAnd
		return &Compiled{Type: rel.TypeBool, Eval: func(r rel.Row) (rel.Value, error) {
			lv, err := left.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			rv, err := right.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			lt, rt := rel.TristateOf(lv), rel.TristateOf(rv)
			if isAnd {
				return lt.And(rt).ToValue(), nil
			}
			return lt.Or(rt).ToValue(), nil
		}}, nil

	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		op := x.Op
		return &Compiled{Type: rel.TypeBool, Eval: func(r rel.Row) (rel.Value, error) {
			lv, err := left.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			rv, err := right.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			cmp, ts := rel.Compare(lv, rv)
			if ts != rel.True {
				return rel.NullOf(rel.TypeBool), nil
			}
			var ok bool
			switch op {
			case sql.OpEq:
				ok = cmp == 0
			case sql.OpNe:
				ok = cmp != 0
			case sql.OpLt:
				ok = cmp < 0
			case sql.OpLe:
				ok = cmp <= 0
			case sql.OpGt:
				ok = cmp > 0
			case sql.OpGe:
				ok = cmp >= 0
			}
			return rel.Bool(ok), nil
		}}, nil

	case sql.OpConcat:
		return &Compiled{Type: rel.TypeText, Eval: func(r rel.Row) (rel.Value, error) {
			lv, err := left.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			rv, err := right.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			if lv.IsNull() || rv.IsNull() {
				return rel.NullOf(rel.TypeText), nil
			}
			return rel.Text(lv.AsText() + rv.AsText()), nil
		}}, nil

	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod:
		return c.compileArith(x.Op, left, right)

	default:
		return nil, fmt.Errorf("expr: unsupported binary operator %v", x.Op)
	}
}

func (c *compiler) compileArith(op sql.BinaryOp, left, right *Compiled) (*Compiled, error) {
	resType := rel.TypeFloat
	intInt := left.Type == rel.TypeInt && right.Type == rel.TypeInt
	if intInt {
		resType = rel.TypeInt
	}
	// Division always yields float except integer %.
	if op == sql.OpDiv {
		resType = rel.TypeFloat
	}
	return &Compiled{Type: resType, Eval: func(r rel.Row) (rel.Value, error) {
		lv, err := left.Eval(r)
		if err != nil {
			return rel.Null(), err
		}
		rv, err := right.Eval(r)
		if err != nil {
			return rel.Null(), err
		}
		if lv.IsNull() || rv.IsNull() {
			return rel.NullOf(resType), nil
		}
		lf, err := rel.Coerce(lv, rel.TypeFloat)
		if err != nil {
			return rel.NullOf(resType), nil
		}
		rf, err := rel.Coerce(rv, rel.TypeFloat)
		if err != nil {
			return rel.NullOf(resType), nil
		}
		a, b := lf.AsFloat(), rf.AsFloat()
		var out float64
		switch op {
		case sql.OpAdd:
			out = a + b
		case sql.OpSub:
			out = a - b
		case sql.OpMul:
			out = a * b
		case sql.OpDiv:
			if b == 0 {
				return rel.NullOf(rel.TypeFloat), nil
			}
			return rel.Float(a / b), nil
		case sql.OpMod:
			if b == 0 {
				return rel.NullOf(resType), nil
			}
			out = math.Mod(a, b)
		}
		if intInt && op != sql.OpDiv {
			return rel.Int(int64(out)), nil
		}
		return rel.Float(out), nil
	}}, nil
}

func (c *compiler) compileUnary(x *sql.UnaryExpr) (*Compiled, error) {
	inner, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "NOT":
		return &Compiled{Type: rel.TypeBool, Eval: func(r rel.Row) (rel.Value, error) {
			v, err := inner.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			return rel.TristateOf(v).Not().ToValue(), nil
		}}, nil
	case "-":
		t := inner.Type
		if !t.Numeric() {
			t = rel.TypeFloat
		}
		return &Compiled{Type: t, Eval: func(r rel.Row) (rel.Value, error) {
			v, err := inner.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			if v.IsNull() {
				return rel.NullOf(t), nil
			}
			if v.Type() == rel.TypeInt {
				return rel.Int(-v.AsInt()), nil
			}
			f, err := rel.Coerce(v, rel.TypeFloat)
			if err != nil {
				return rel.NullOf(t), nil
			}
			return rel.Float(-f.AsFloat()), nil
		}}, nil
	default:
		return nil, fmt.Errorf("expr: unsupported unary operator %q", x.Op)
	}
}

func (c *compiler) compileIn(x *sql.InExpr) (*Compiled, error) {
	if x.Subquery != nil {
		return nil, fmt.Errorf("expr: IN subquery must be materialised by the planner before compilation")
	}
	target, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	items := make([]*Compiled, len(x.List))
	for i, it := range x.List {
		ci, err := c.compile(it)
		if err != nil {
			return nil, err
		}
		items[i] = ci
	}
	not := x.Not
	return &Compiled{Type: rel.TypeBool, Eval: func(r rel.Row) (rel.Value, error) {
		tv, err := target.Eval(r)
		if err != nil {
			return rel.Null(), err
		}
		if tv.IsNull() {
			return rel.NullOf(rel.TypeBool), nil
		}
		sawNull := false
		for _, it := range items {
			iv, err := it.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if rel.Equal(tv, iv) {
				return rel.Bool(!not), nil
			}
		}
		if sawNull {
			return rel.NullOf(rel.TypeBool), nil
		}
		return rel.Bool(not), nil
	}}, nil
}

func (c *compiler) compileBetween(x *sql.BetweenExpr) (*Compiled, error) {
	target, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	lo, err := c.compile(x.Lo)
	if err != nil {
		return nil, err
	}
	hi, err := c.compile(x.Hi)
	if err != nil {
		return nil, err
	}
	not := x.Not
	return &Compiled{Type: rel.TypeBool, Eval: func(r rel.Row) (rel.Value, error) {
		tv, err := target.Eval(r)
		if err != nil {
			return rel.Null(), err
		}
		lv, err := lo.Eval(r)
		if err != nil {
			return rel.Null(), err
		}
		hv, err := hi.Eval(r)
		if err != nil {
			return rel.Null(), err
		}
		c1, t1 := rel.Compare(tv, lv)
		c2, t2 := rel.Compare(tv, hv)
		if t1 != rel.True || t2 != rel.True {
			return rel.NullOf(rel.TypeBool), nil
		}
		in := c1 >= 0 && c2 <= 0
		return rel.Bool(in != not), nil
	}}, nil
}

func (c *compiler) compileLike(x *sql.LikeExpr) (*Compiled, error) {
	target, err := c.compile(x.X)
	if err != nil {
		return nil, err
	}
	pat, err := c.compile(x.Pattern)
	if err != nil {
		return nil, err
	}
	not := x.Not
	return &Compiled{Type: rel.TypeBool, Eval: func(r rel.Row) (rel.Value, error) {
		tv, err := target.Eval(r)
		if err != nil {
			return rel.Null(), err
		}
		pv, err := pat.Eval(r)
		if err != nil {
			return rel.Null(), err
		}
		if tv.IsNull() || pv.IsNull() {
			return rel.NullOf(rel.TypeBool), nil
		}
		ok := MatchLike(tv.AsText(), pv.AsText())
		return rel.Bool(ok != not), nil
	}}, nil
}

func (c *compiler) compileCase(x *sql.CaseExpr) (*Compiled, error) {
	var operand *Compiled
	var err error
	if x.Operand != nil {
		operand, err = c.compile(x.Operand)
		if err != nil {
			return nil, err
		}
	}
	type arm struct {
		cond *Compiled
		then *Compiled
	}
	arms := make([]arm, len(x.Whens))
	resType := rel.TypeUnknown
	for i, w := range x.Whens {
		cond, err := c.compile(w.Cond)
		if err != nil {
			return nil, err
		}
		then, err := c.compile(w.Then)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{cond, then}
		resType = rel.CommonType(resType, then.Type)
	}
	var elseC *Compiled
	if x.Else != nil {
		elseC, err = c.compile(x.Else)
		if err != nil {
			return nil, err
		}
		resType = rel.CommonType(resType, elseC.Type)
	}
	return &Compiled{Type: resType, Eval: func(r rel.Row) (rel.Value, error) {
		var opv rel.Value
		if operand != nil {
			var err error
			opv, err = operand.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
		}
		for _, a := range arms {
			cv, err := a.cond.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			matched := false
			if operand != nil {
				matched = rel.Equal(opv, cv)
			} else {
				matched = rel.TristateOf(cv) == rel.True
			}
			if matched {
				return a.then.Eval(r)
			}
		}
		if elseC != nil {
			return elseC.Eval(r)
		}
		return rel.NullOf(resType), nil
	}}, nil
}

// MatchLike implements SQL LIKE pattern matching with % (any run) and _
// (any single character). Matching is case-sensitive per the standard.
func MatchLike(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer algorithm with backtracking on '%'.
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// scalarFuncs maps a function name to (arity check, type inference,
// implementation).
type scalarFunc struct {
	minArgs int
	maxArgs int // -1 for unbounded
	typ     func(args []*Compiled) rel.DataType
	impl    func(vals []rel.Value) (rel.Value, error)
}

var scalarFuncs = map[string]scalarFunc{
	"UPPER": {1, 1, fixed(rel.TypeText), textFn(strings.ToUpper)},
	"LOWER": {1, 1, fixed(rel.TypeText), textFn(strings.ToLower)},
	"TRIM":  {1, 1, fixed(rel.TypeText), textFn(strings.TrimSpace)},
	"LENGTH": {1, 1, fixed(rel.TypeInt), func(v []rel.Value) (rel.Value, error) {
		if v[0].IsNull() {
			return rel.NullOf(rel.TypeInt), nil
		}
		return rel.Int(int64(len(v[0].AsText()))), nil
	}},
	"SUBSTR": {2, 3, fixed(rel.TypeText), substrImpl},
	"ABS": {1, 1, numericType, func(v []rel.Value) (rel.Value, error) {
		if v[0].IsNull() {
			return rel.Null(), nil
		}
		if v[0].Type() == rel.TypeInt {
			n := v[0].AsInt()
			if n < 0 {
				n = -n
			}
			return rel.Int(n), nil
		}
		f, err := rel.Coerce(v[0], rel.TypeFloat)
		if err != nil {
			return rel.Null(), nil
		}
		return rel.Float(math.Abs(f.AsFloat())), nil
	}},
	"ROUND": {1, 2, numericType, roundImpl},
	"FLOOR": {1, 1, fixed(rel.TypeInt), func(v []rel.Value) (rel.Value, error) {
		if v[0].IsNull() {
			return rel.NullOf(rel.TypeInt), nil
		}
		f, err := rel.Coerce(v[0], rel.TypeFloat)
		if err != nil {
			return rel.NullOf(rel.TypeInt), nil
		}
		return rel.Int(int64(math.Floor(f.AsFloat()))), nil
	}},
	"CEIL": {1, 1, fixed(rel.TypeInt), func(v []rel.Value) (rel.Value, error) {
		if v[0].IsNull() {
			return rel.NullOf(rel.TypeInt), nil
		}
		f, err := rel.Coerce(v[0], rel.TypeFloat)
		if err != nil {
			return rel.NullOf(rel.TypeInt), nil
		}
		return rel.Int(int64(math.Ceil(f.AsFloat()))), nil
	}},
	"COALESCE": {1, -1, firstArgType, func(v []rel.Value) (rel.Value, error) {
		for _, x := range v {
			if !x.IsNull() {
				return x, nil
			}
		}
		return rel.Null(), nil
	}},
	"NULLIF": {2, 2, firstArgType, func(v []rel.Value) (rel.Value, error) {
		if rel.Equal(v[0], v[1]) {
			return rel.Null(), nil
		}
		return v[0], nil
	}},
	"CONCAT": {1, -1, fixed(rel.TypeText), func(v []rel.Value) (rel.Value, error) {
		var b strings.Builder
		for _, x := range v {
			if !x.IsNull() {
				b.WriteString(x.AsText())
			}
		}
		return rel.Text(b.String()), nil
	}},
}

func fixed(t rel.DataType) func([]*Compiled) rel.DataType {
	return func([]*Compiled) rel.DataType { return t }
}

func numericType(args []*Compiled) rel.DataType {
	if len(args) > 0 && args[0].Type == rel.TypeInt {
		return rel.TypeInt
	}
	return rel.TypeFloat
}

func firstArgType(args []*Compiled) rel.DataType {
	t := rel.TypeUnknown
	for _, a := range args {
		t = rel.CommonType(t, a.Type)
	}
	return t
}

func textFn(f func(string) string) func([]rel.Value) (rel.Value, error) {
	return func(v []rel.Value) (rel.Value, error) {
		if v[0].IsNull() {
			return rel.NullOf(rel.TypeText), nil
		}
		return rel.Text(f(v[0].AsText())), nil
	}
}

func substrImpl(v []rel.Value) (rel.Value, error) {
	if v[0].IsNull() || v[1].IsNull() {
		return rel.NullOf(rel.TypeText), nil
	}
	s := v[0].AsText()
	startV, err := rel.Coerce(v[1], rel.TypeInt)
	if err != nil {
		return rel.NullOf(rel.TypeText), nil
	}
	start := int(startV.AsInt()) - 1 // SQL is 1-based
	if start < 0 {
		start = 0
	}
	if start > len(s) {
		return rel.Text(""), nil
	}
	end := len(s)
	if len(v) == 3 && !v[2].IsNull() {
		lenV, err := rel.Coerce(v[2], rel.TypeInt)
		if err == nil {
			n := int(lenV.AsInt())
			if n < 0 {
				n = 0
			}
			if start+n < end {
				end = start + n
			}
		}
	}
	return rel.Text(s[start:end]), nil
}

func roundImpl(v []rel.Value) (rel.Value, error) {
	if v[0].IsNull() {
		return rel.Null(), nil
	}
	f, err := rel.Coerce(v[0], rel.TypeFloat)
	if err != nil {
		return rel.Null(), nil
	}
	digits := 0
	if len(v) == 2 && !v[1].IsNull() {
		d, err := rel.Coerce(v[1], rel.TypeInt)
		if err == nil {
			digits = int(d.AsInt())
		}
	}
	scale := math.Pow(10, float64(digits))
	out := math.Round(f.AsFloat()*scale) / scale
	if digits <= 0 && v[0].Type() == rel.TypeInt {
		return rel.Int(int64(out)), nil
	}
	return rel.Float(out), nil
}

func (c *compiler) compileFunc(x *sql.FuncCall) (*Compiled, error) {
	def, ok := scalarFuncs[x.Name]
	if !ok {
		return nil, fmt.Errorf("expr: unknown function %s", x.Name)
	}
	if len(x.Args) < def.minArgs || (def.maxArgs >= 0 && len(x.Args) > def.maxArgs) {
		return nil, fmt.Errorf("expr: %s takes %d..%d arguments, got %d", x.Name, def.minArgs, def.maxArgs, len(x.Args))
	}
	args := make([]*Compiled, len(x.Args))
	for i, a := range x.Args {
		ca, err := c.compile(a)
		if err != nil {
			return nil, err
		}
		args[i] = ca
	}
	typ := def.typ(args)
	impl := def.impl
	return &Compiled{Type: typ, Eval: func(r rel.Row) (rel.Value, error) {
		vals := make([]rel.Value, len(args))
		for i, a := range args {
			v, err := a.Eval(r)
			if err != nil {
				return rel.Null(), err
			}
			vals[i] = v
		}
		return impl(vals)
	}}, nil
}
