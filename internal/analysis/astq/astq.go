// Package astq holds the small typed-AST queries shared by the invariant
// analyzers: resolving a call expression to the *types.Func it invokes,
// stripping an expression to its root identifier, and matching functions
// by package path and name.
package astq

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function a call expression invokes, whether spelled
// as a plain identifier or a selector (package function, method, or
// interface method). It returns nil for builtins, conversions, and calls
// through function-typed values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // qualified identifier: pkg.Func
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsBuiltin reports whether a call invokes the named builtin.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// PkgPath returns the import path of the package a function belongs to,
// or "" for functions without one (error.Error and friends).
func PkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// IsPkgLevel reports whether fn is a package-level function (no
// receiver), e.g. time.Now as opposed to (*time.Timer).Reset.
func IsPkgLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// RootIdent strips selectors, indexing, stars and parens off an
// expression and returns its base identifier, or nil when the expression
// does not bottom out in one (a call result, a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Object resolves the root identifier of e to its types.Object, or nil.
func Object(info *types.Info, e ast.Expr) types.Object {
	id := RootIdent(e)
	if id == nil {
		return nil
	}
	return info.Uses[id]
}

// DeclaredWithin reports whether obj's declaration lies inside n's source
// span — used to tell per-iteration locals from state that outlives a
// loop.
func DeclaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}
