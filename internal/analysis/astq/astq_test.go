package astq_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"llmsql/internal/analysis/astq"
)

// src declares everything the queries are exercised against; it imports
// nothing so the type checker needs no importer to resolve it.
const src = `package fix

type box struct{ v int }

func (b *box) Get() int { return b.v }

func plain() int { return 1 }

var fnVal = plain

func use() {
	b := &box{}
	_ = b.Get()
	_ = plain()
	_ = fnVal()
	_ = len("x")
	_ = int64(3)
	m := map[string][]int{}
	for k, vs := range m {
		_ = k
		_ = vs
	}
}
`

func check(t *testing.T) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fix.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	cfg := types.Config{Importer: importer.Default()}
	if _, err := cfg.Check("fix", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	return fset, file, info
}

// calls collects every call expression in source order.
func calls(file *ast.File) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(file, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

func TestCalleeAndBuiltin(t *testing.T) {
	_, file, info := check(t)
	cs := calls(file)
	if len(cs) != 5 {
		t.Fatalf("fixture has %d calls, want 5", len(cs))
	}
	method, plainCall, viaValue, lenCall, conv := cs[0], cs[1], cs[2], cs[3], cs[4]

	if fn := astq.Callee(info, method); fn == nil || fn.Name() != "Get" {
		t.Errorf("Callee(b.Get()) = %v, want method Get", fn)
	} else {
		if astq.IsPkgLevel(fn) {
			t.Errorf("IsPkgLevel(Get) = true, want false (it has a receiver)")
		}
		if got := astq.PkgPath(fn); got != "fix" {
			t.Errorf("PkgPath(Get) = %q, want fix", got)
		}
	}
	if fn := astq.Callee(info, plainCall); fn == nil || fn.Name() != "plain" {
		t.Errorf("Callee(plain()) = %v, want plain", fn)
	} else if !astq.IsPkgLevel(fn) {
		t.Errorf("IsPkgLevel(plain) = false, want true")
	}
	if fn := astq.Callee(info, viaValue); fn != nil {
		t.Errorf("Callee(fnVal()) = %v, want nil (call through a value)", fn)
	}
	if fn := astq.Callee(info, lenCall); fn != nil {
		t.Errorf("Callee(len(..)) = %v, want nil (builtin)", fn)
	}
	if fn := astq.Callee(info, conv); fn != nil {
		t.Errorf("Callee(int64(..)) = %v, want nil (conversion)", fn)
	}

	if !astq.IsBuiltin(info, lenCall, "len") {
		t.Errorf("IsBuiltin(len(..), len) = false, want true")
	}
	if astq.IsBuiltin(info, lenCall, "cap") {
		t.Errorf("IsBuiltin(len(..), cap) = true, want false")
	}
	if astq.IsBuiltin(info, plainCall, "plain") {
		t.Errorf("IsBuiltin(plain(), plain) = true, want false (not a builtin)")
	}
	if got := astq.PkgPath(nil); got != "" {
		t.Errorf("PkgPath(nil) = %q, want empty", got)
	}
}

func TestRootIdentAndObject(t *testing.T) {
	_, file, info := check(t)

	sel := &ast.SelectorExpr{
		X:   &ast.ParenExpr{X: &ast.StarExpr{X: ast.NewIdent("p")}},
		Sel: ast.NewIdent("f"),
	}
	if id := astq.RootIdent(sel); id == nil || id.Name != "p" {
		t.Errorf("RootIdent((*p).f) = %v, want p", id)
	}
	idx := &ast.IndexExpr{X: ast.NewIdent("xs"), Index: ast.NewIdent("i")}
	if id := astq.RootIdent(idx); id == nil || id.Name != "xs" {
		t.Errorf("RootIdent(xs[i]) = %v, want xs", id)
	}
	lit := &ast.BasicLit{Kind: token.INT, Value: "1"}
	if id := astq.RootIdent(lit); id != nil {
		t.Errorf("RootIdent(1) = %v, want nil", id)
	}
	if obj := astq.Object(info, lit); obj != nil {
		t.Errorf("Object(1) = %v, want nil", obj)
	}

	// Find `_ = vs` inside the range loop: its object is declared within
	// the loop; fnVal's is not.
	var rng *ast.RangeStmt
	var vsUse, fnUse ast.Expr
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			rng = x
		case *ast.Ident:
			if x.Name == "vs" && info.Uses[x] != nil {
				vsUse = x
			}
			if x.Name == "fnVal" && info.Uses[x] != nil {
				fnUse = x
			}
		}
		return true
	})
	if rng == nil || vsUse == nil || fnUse == nil {
		t.Fatal("fixture walk did not find the range loop and uses")
	}
	if obj := astq.Object(info, vsUse); !astq.DeclaredWithin(obj, rng) {
		t.Errorf("DeclaredWithin(vs, range) = false, want true")
	}
	if obj := astq.Object(info, fnUse); astq.DeclaredWithin(obj, rng) {
		t.Errorf("DeclaredWithin(fnVal, range) = true, want false")
	}
	if astq.DeclaredWithin(nil, rng) {
		t.Errorf("DeclaredWithin(nil, _) = true, want false")
	}
}
