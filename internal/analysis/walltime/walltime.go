// Package walltime forbids wall-clock time and unseeded global randomness
// inside the engine's deterministic packages.
//
// The reproduction's replay gate proves that a query produces
// byte-identical rows, stats and simulated latency on every run; that
// only holds if the deterministic core (internal/core, exec, plan, llm,
// sql, world, bench) takes time exclusively from llm.Sched's virtual
// clock and randomness exclusively from explicitly seeded generators.
// This analyzer flags, in those packages only:
//
//   - time.Now, time.Since, time.Until, time.Sleep, time.After,
//     time.AfterFunc, time.Tick, time.NewTimer, time.NewTicker — real
//     clocks and timers;
//   - package-level math/rand and math/rand/v2 calls (rand.Intn,
//     rand.Float64, rand.Shuffle, ...), which draw from the globally
//     seeded source. Constructing a seeded generator (rand.New,
//     rand.NewSource, rand.NewPCG, rand.NewChaCha8, rand.NewZipf) and
//     calling methods on it is fine.
//
// Packages outside the deterministic set — internal/serve's real network
// deadlines, the cmd/ binaries' progress timers — are not checked.
package walltime

import (
	"go/ast"
	"strings"

	"llmsql/internal/analysis"
	"llmsql/internal/analysis/astq"
)

// Analyzer is the walltime checker.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbids wall-clock time and unseeded randomness in the deterministic packages",
	Run:  run,
}

// deterministic lists the package import paths (and, implicitly, their
// subpackages) where virtual time is the law.
var deterministic = []string{
	"llmsql/internal/core",
	"llmsql/internal/exec",
	"llmsql/internal/plan",
	"llmsql/internal/llm",
	"llmsql/internal/sql",
	"llmsql/internal/world",
	"llmsql/internal/bench",
}

// timeFuncs are the package-level time functions that read the real
// clock or arm real timers.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededCtors are the math/rand constructors that are allowed because
// they only build explicitly seeded generators.
var seededCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Deterministic reports whether pkgPath falls under the deterministic
// set (exported so the self-test and docs can enumerate the same list).
func Deterministic(pkgPath string) bool {
	for _, p := range deterministic {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astq.Callee(pass.TypesInfo, call)
			if fn == nil || !astq.IsPkgLevel(fn) {
				return true
			}
			switch astq.PkgPath(fn) {
			case "time":
				if timeFuncs[fn.Name()] {
					pass.Reportf(call.Pos(),
						"time.%s in deterministic package %s: take time from llm.Sched's virtual clock",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !seededCtors[fn.Name()] {
					pass.Reportf(call.Pos(),
						"global rand.%s in deterministic package %s: use an explicitly seeded *rand.Rand",
						fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil, nil
}
