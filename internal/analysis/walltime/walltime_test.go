package walltime_test

import (
	"testing"

	"llmsql/internal/analysis/analysistest"
	"llmsql/internal/analysis/walltime"
)

// TestWalltime checks the same rules three ways: the fixture
// type-checked under a deterministic import path must produce every
// wanted diagnostic, a retry/backoff-shaped fixture under the retry
// layer's path must be caught too (real sleeps can never bypass
// llm.Sched), and a wall-clock-using fixture under internal/serve's
// path must produce none.
func TestWalltime(t *testing.T) {
	analysistest.Run(t, "../testdata", "walltime", "llmsql/internal/exec", walltime.Analyzer)
	analysistest.Run(t, "../testdata", "walltime_retry", "llmsql/internal/llm/retry", walltime.Analyzer)
	analysistest.Run(t, "../testdata", "walltime_serve", "llmsql/internal/serve", walltime.Analyzer)
}

func TestDeterministicList(t *testing.T) {
	for _, p := range []string{
		"llmsql/internal/core", "llmsql/internal/exec", "llmsql/internal/plan",
		"llmsql/internal/llm", "llmsql/internal/sql", "llmsql/internal/world",
		"llmsql/internal/bench", "llmsql/internal/llm/sub",
	} {
		if !walltime.Deterministic(p) {
			t.Errorf("Deterministic(%q) = false, want true", p)
		}
	}
	for _, p := range []string{
		"llmsql/internal/serve", "llmsql/internal/llmx", "llmsql", "llmsql/cmd/llmsql",
	} {
		if walltime.Deterministic(p) {
			t.Errorf("Deterministic(%q) = true, want false", p)
		}
	}
}
