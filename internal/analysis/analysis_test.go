package analysis_test

import (
	"testing"

	"llmsql/internal/analysis"
)

func TestReportf(t *testing.T) {
	var got []analysis.Diagnostic
	p := &analysis.Pass{Report: func(d analysis.Diagnostic) { got = append(got, d) }}
	p.Reportf(42, "bad %s at %d", "thing", 7)
	if len(got) != 1 {
		t.Fatalf("Reportf delivered %d diagnostics, want 1", len(got))
	}
	if got[0].Pos != 42 || got[0].Message != "bad thing at 7" {
		t.Errorf("diagnostic = %+v, want pos 42 message %q", got[0], "bad thing at 7")
	}
}
