// Package driver loads Go packages and runs the project's invariant
// analyzers over them.
//
// It is the offline stand-in for the x/tools multichecker machinery:
// package metadata and compiled export data come from `go list -export
// -deps -json` (which works from the local build cache, no network or
// module downloads), the packages under analysis are re-parsed and
// type-checked from source so analyzers see full syntax trees, and their
// imports are satisfied from export data through the standard library's gc
// importer. Findings suppressed by a `//llmsql:allow <analyzer> <reason>`
// comment — on the offending line or the line directly above — are
// dropped; a suppression without a reason is itself a finding, so every
// waiver in the tree carries a written justification.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"llmsql/internal/analysis"
)

// Finding is one surviving diagnostic, resolved to a file position.
type Finding struct {
	// Analyzer names the checker that produced the finding (or "driver"
	// for suppression-syntax problems).
	Analyzer string
	// Pos is the finding's file:line:column.
	Pos token.Position
	// Message states the violated invariant.
	Message string
}

// String renders the finding in the canonical file:line:col: analyzer:
// message shape understood by editors.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Importer resolves imports from compiled export data, shelling out to
// `go list -export` lazily for packages not seen in the initial load. It
// is safe for sequential reuse across many type-check calls; the
// underlying gc importer caches every package it materializes.
type Importer struct {
	mu      sync.Mutex
	dir     string            // working directory for go list
	exports map[string]string // import path -> export data file
	gc      types.ImporterFrom
}

// NewImporter returns an Importer that runs `go list` in dir (any
// directory inside the target module, or anywhere for std-only imports).
func NewImporter(fset *token.FileSet, dir string) *Importer {
	imp := &Importer{dir: dir, exports: make(map[string]string)}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup).(types.ImporterFrom)
	return imp
}

// lookup opens the export data for path, resolving unseen paths with one
// extra `go list -export` call.
func (imp *Importer) lookup(path string) (io.ReadCloser, error) {
	imp.mu.Lock()
	file, ok := imp.exports[path]
	imp.mu.Unlock()
	if !ok {
		out, err := runGoList(imp.dir, "-export", "-f", "{{.Export}}", path)
		if err != nil {
			return nil, fmt.Errorf("driver: no export data for %q: %w", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("driver: empty export data path for %q", path)
		}
		imp.mu.Lock()
		imp.exports[path] = file
		imp.mu.Unlock()
	}
	return os.Open(file)
}

// add records already-known export data files (from the initial -deps
// load) so lookup does not have to shell out for them.
func (imp *Importer) add(path, exportFile string) {
	if exportFile == "" {
		return
	}
	imp.mu.Lock()
	imp.exports[path] = exportFile
	imp.mu.Unlock()
}

// Import implements types.Importer.
func (imp *Importer) Import(path string) (*types.Package, error) {
	return imp.gc.Import(path)
}

// ImportFrom implements types.ImporterFrom.
func (imp *Importer) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return imp.gc.ImportFrom(path, dir, mode)
}

// runGoList invokes the go tool's list subcommand in dir.
func runGoList(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w: %s", strings.Join(args, " "), err, strings.TrimSpace(stderr.String()))
	}
	return out, nil
}

// newInfo allocates a types.Info with every result map analyzers may read.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// TypeCheck parses the named files and type-checks them as one package
// with the given import path, resolving imports through imp. It returns
// the pieces an analysis.Pass needs.
func TypeCheck(fset *token.FileSet, importPath string, filenames []string, imp types.Importer) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: imp}
	info := newInfo()
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}

// Run loads the packages matched by patterns (relative to dir, which must
// lie inside the target module), runs every analyzer over each in-module
// package, and returns the findings that were not suppressed, sorted by
// position. Standard-library and out-of-module dependencies are loaded
// from export data only and never analyzed. Test files are not loaded;
// the invariants guard what ships.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	fields := "-json=Dir,ImportPath,Name,GoFiles,Export,Standard,Module,Error"
	out, err := runGoList(dir, append([]string{"-e", "-export", "-deps", fields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, dir)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("driver: %s: %s", p.ImportPath, p.Error.Err)
		}
		imp.add(p.ImportPath, p.Export)
		if p.Module != nil && !p.Standard {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	var findings []Finding
	for _, t := range targets {
		fs, err := analyzePackage(fset, t, imp, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// analyzePackage type-checks one package from source and applies the
// analyzers, filtering suppressed diagnostics.
func analyzePackage(fset *token.FileSet, lp *listPackage, imp types.Importer, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var filenames []string
	for _, f := range lp.GoFiles {
		filenames = append(filenames, filepath.Join(lp.Dir, f))
	}
	if len(filenames) == 0 {
		return nil, nil
	}
	files, pkg, info, err := TypeCheck(fset, lp.ImportPath, filenames, imp)
	if err != nil {
		return nil, fmt.Errorf("driver: type-checking %s: %w", lp.ImportPath, err)
	}

	sup, bad := collectAllows(fset, files)
	findings := bad // malformed suppressions are findings in their own right
	for _, az := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  az,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := az.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if sup.allows(name, pos) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if _, err := az.Run(pass); err != nil {
			return nil, fmt.Errorf("driver: %s on %s: %w", az.Name, lp.ImportPath, err)
		}
	}
	return findings, nil
}

// AllowPrefix is the suppression comment marker. The full syntax is
//
//	//llmsql:allow <analyzer> <reason...>
//
// placed on the flagged line or alone on the line directly above it. The
// reason is mandatory: a bare waiver is reported by the driver instead of
// honored.
const AllowPrefix = "//llmsql:allow"

// suppressions indexes allowed analyzer names by file and line.
type suppressions map[string]map[int][]string

// allows reports whether an allow for analyzer covers pos (same line or
// the line above).
func (s suppressions) allows(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// collectAllows scans file comments for suppression markers, returning
// the index plus driver findings for markers missing the required reason.
func collectAllows(fset *token.FileSet, files []*ast.File) (suppressions, []Finding) {
	sup := make(suppressions)
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowPrefix)
				pos := fset.Position(c.Pos())
				fieldsOf := strings.Fields(rest)
				if len(fieldsOf) == 0 {
					bad = append(bad, Finding{Analyzer: "driver", Pos: pos,
						Message: "llmsql:allow needs an analyzer name and a reason"})
					continue
				}
				if len(fieldsOf) < 2 {
					bad = append(bad, Finding{Analyzer: "driver", Pos: pos,
						Message: fmt.Sprintf("llmsql:allow %s needs a written reason", fieldsOf[0])})
					continue
				}
				if sup[pos.Filename] == nil {
					sup[pos.Filename] = make(map[int][]string)
				}
				sup[pos.Filename][pos.Line] = append(sup[pos.Filename][pos.Line], fieldsOf[0])
			}
		}
	}
	return sup, bad
}
