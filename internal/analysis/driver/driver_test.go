package driver_test

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"llmsql/internal/analysis/driver"
	"llmsql/internal/analysis/suite"
)

func TestFindingString(t *testing.T) {
	f := driver.Finding{
		Analyzer: "mapiter",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "map iteration order reaches output",
	}
	if got, want := f.String(), "x.go:3:7: mapiter: map iteration order reaches output"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestImporterLazyLookup exercises the lazy `go list -export` path:
// an importer constructed with no preloaded export data must still
// resolve a stdlib package, serve it again from cache, and fail cleanly
// on a package that does not exist.
func TestImporterLazyLookup(t *testing.T) {
	fset := token.NewFileSet()
	imp := driver.NewImporter(fset, ".")
	pkg, err := imp.Import("fmt")
	if err != nil {
		t.Fatalf("Import(fmt): %v", err)
	}
	if pkg.Path() != "fmt" || !pkg.Complete() {
		t.Errorf("Import(fmt) = %v (complete=%v), want complete fmt", pkg.Path(), pkg.Complete())
	}
	again, err := imp.Import("fmt")
	if err != nil || again != pkg {
		t.Errorf("second Import(fmt) = (%v, %v), want the cached package", again, err)
	}
	if _, err := imp.Import("no/such/package"); err == nil {
		t.Error("Import(no/such/package) succeeded, want error")
	}
}

// TestTypeCheck drives TypeCheck directly: a valid file resolves its
// imports through the importer; an unparsable file and an absent file
// both surface errors.
func TestTypeCheck(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.go")
	if err := os.WriteFile(good, []byte("package p\n\nimport \"strings\"\n\nfunc Up(s string) string { return strings.ToUpper(s) }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	imp := driver.NewImporter(fset, ".")
	files, pkg, info, err := driver.TypeCheck(fset, "tmp/p", []string{good}, imp)
	if err != nil {
		t.Fatalf("TypeCheck: %v", err)
	}
	if len(files) != 1 || pkg.Path() != "tmp/p" || len(info.Uses) == 0 {
		t.Errorf("TypeCheck = %d files, pkg %q, %d uses; want 1 file, tmp/p, some uses",
			len(files), pkg.Path(), len(info.Uses))
	}

	bad := filepath.Join(dir, "bad.go")
	if err := os.WriteFile(bad, []byte("package p\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := driver.TypeCheck(fset, "tmp/bad", []string{bad}, imp); err == nil {
		t.Error("TypeCheck on an unparsable file succeeded, want error")
	}
	if _, _, _, err := driver.TypeCheck(fset, "tmp/none", []string{filepath.Join(dir, "absent.go")}, imp); err == nil {
		t.Error("TypeCheck on a missing file succeeded, want error")
	}
}

// TestRunBadPattern checks the driver's load-failure path.
func TestRunBadPattern(t *testing.T) {
	if _, err := driver.Run(".", []string{"./no/such/dir/..."}, suite.All()); err == nil {
		t.Error("Run with a bogus pattern succeeded, want error")
	}
}
