package driver_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llmsql/internal/analysis/driver"
	"llmsql/internal/analysis/suite"
)

// TestSuppression drives the full driver over a throwaway module:
// a reasoned //llmsql:allow comment silences its finding, a bare one is
// itself reported, and unsuppressed findings come through.
func TestSuppression(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpfix\n\ngo 1.22\n")
	write("a.go", `package a

import "fmt"

func suppressed(err error) error {
	//llmsql:allow errwrap public API hides the cause on purpose
	return fmt.Errorf("masked: %v", err)
}

func sameLine(err error) error {
	return fmt.Errorf("masked: %v", err) //llmsql:allow errwrap tested same-line form
}

func bareAllow(err error) error {
	//llmsql:allow errwrap
	return fmt.Errorf("masked: %v", err)
}

func unsuppressed(err error) error {
	return fmt.Errorf("plain: %v", err)
}
`)
	findings, err := driver.Run(dir, []string{"./..."}, suite.All())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
	}
	if len(findings) != 3 {
		t.Fatalf("want 3 findings (bare allow + its finding + unsuppressed), got %d:\n%s",
			len(findings), strings.Join(got, "\n"))
	}
	assertFinding := func(i int, analyzer, substr string, line int) {
		t.Helper()
		f := findings[i]
		if f.Analyzer != analyzer || !strings.Contains(f.Message, substr) || f.Pos.Line != line {
			t.Errorf("finding %d = %s; want analyzer %s line %d message containing %q",
				i, f, analyzer, line, substr)
		}
	}
	assertFinding(0, "driver", "needs a written reason", 15)
	assertFinding(1, "errwrap", "use %w", 16)
	assertFinding(2, "errwrap", "use %w", 20)
}
