// Package fixture exercises the mapiter analyzer.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration without a later sort`
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom: allowed
	}
	sort.Strings(keys)
	return keys
}

func appendThenSliceSort(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) // sorted below via sort.Slice: allowed
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func perIterationSlice(m map[string][]string, out map[string]string) {
	for k, parts := range m {
		var quoted []string
		for _, p := range parts {
			quoted = append(quoted, "'"+p+"'") // per-iteration slice: allowed
		}
		out[k] = strings.Join(quoted, ",")
	}
}

func stringConcat(m map[string]int) string {
	var s string
	for k := range m {
		s += k // want `string built inside map iteration`
	}
	return s
}

func channelSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `send inside map iteration`
	}
}

func builderWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `b.WriteString inside map iteration`
	}
	return b.String()
}

func printing(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside map iteration`
	}
}

func orderInsensitive(m map[string]int) (int, map[string]bool) {
	n := 0
	seen := make(map[string]bool)
	for k, v := range m {
		n += v         // commutative fold: allowed
		seen[k] = true // map write: allowed
		delete(m, k)
	}
	return n, seen
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // slice iteration is ordered: allowed
	}
	return out
}
