// Package fixture is the walltime negative case: the same wall-clock
// calls type-checked under llmsql/internal/serve, which is outside the
// deterministic set — real network deadlines are that package's job.
package fixture

import "time"

func deadlines() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now().Add(30 * time.Second)
}
