// Package fixture exercises the lockheld analyzer.
package fixture

import (
	"net"
	"sync"
)

type request struct{ prompt string }

type response struct{ text string }

type model struct{}

func (model) Complete(req request) (response, error) { return response{}, nil }

type cache struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	inner model
	memo  map[string]response
}

func (c *cache) deferUnlockHeld(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inner.Complete(req) // want `model.Complete called while holding c.mu`
}

func (c *cache) rlockHeld(req request) (response, error) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.inner.Complete(req) // want `model.Complete called while holding c.rw`
}

func (c *cache) dialHeld() (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return net.Dial("tcp", "localhost:1") // want `net.Dial called while holding c.mu`
}

func (c *cache) unlockFirst(req request) (response, error) {
	c.mu.Lock()
	if r, ok := c.memo[req.prompt]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()
	r, err := c.inner.Complete(req) // released above: allowed
	c.mu.Lock()
	c.memo[req.prompt] = r
	c.mu.Unlock()
	return r, err
}

func (c *cache) goroutineOwnsNoLock(req request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		// A spawned goroutine does not hold its creator's lock.
		_, _ = c.inner.Complete(req)
	}()
}

func (c *cache) deferredClosure(req request) {
	defer func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		_, _ = c.inner.Complete(req) // want `model.Complete called while holding c.mu`
	}()
}

func (c *cache) noLockAtAll(req request) (response, error) {
	return c.inner.Complete(req) // no lock in sight: allowed
}
