// Package fixture exercises the errwrap analyzer.
package fixture

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

type myErr struct{}

func (myErr) Error() string { return "my" }

func flagged(err error) {
	_ = fmt.Errorf("scan failed: %v", err)           // want `use %w`
	_ = fmt.Errorf("scan failed: %s", err)           // want `use %w`
	_ = fmt.Errorf("scan failed: %+v", err)          // want `use %w`
	_ = fmt.Errorf("x %d y: %v", 7, err)             // want `use %w`
	_ = fmt.Errorf("pad %*d: %v", 4, 7, err)         // want `use %w`
	_ = fmt.Errorf("again: %[1]v and %[1]v", err)    // want `use %w` `use %w`
	_ = fmt.Errorf("concrete: %v", myErr{})          // want `use %w`
	_ = fmt.Errorf("both: %w then %v", errBase, err) // want `use %w`
	_ = fmt.Errorf("const "+"join: %v: done", err)   // want `use %w`
	wrapped := fmt.Errorf("deep: %v", flatten(err))  // want `use %w`
	_ = wrapped
}

func clean(err error) {
	_ = fmt.Errorf("scan failed: %w", err)
	_ = fmt.Errorf("count %d of %s", 3, "x")
	_ = fmt.Errorf("stringified: %v", err.Error())
	_ = fmt.Errorf("type only: %T", err)
	_ = fmt.Errorf("no operands")
	_ = fmt.Errorf("literal percent %% then %d", 1)
	_ = errors.New("not Errorf at all")
	f := "dynamic: %v" // non-constant format: vet's printf check owns it
	_ = fmt.Errorf(f, err)
}

func flatten(err error) error { return err }
