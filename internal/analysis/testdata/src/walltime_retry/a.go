// Package fixture exercises the walltime analyzer on retry/backoff-shaped
// code; the test type-checks it under the retry layer's import path
// (llmsql/internal/llm/retry) to prove the deterministic set covers it by
// prefix: a retry loop that waits on the real clock — the classic way a
// backoff implementation smuggles wall time past llm.Sched — is flagged.
package fixture

import (
	"time"
)

func retryWithRealSleep(attempt func() error) error {
	backoff := 200 * time.Millisecond
	for i := 0; i < 4; i++ {
		if err := attempt(); err == nil {
			return nil
		}
		time.Sleep(backoff) // want `time.Sleep in deterministic package`
		backoff *= 2
	}
	return attempt()
}

func retryWithRealTimer(attempt func() error) {
	start := time.Now() // want `time.Now in deterministic package`
	for attempt() != nil {
		<-time.After(time.Second)            // want `time.After in deterministic package`
		if time.Since(start) > time.Minute { // want `time.Since in deterministic package`
			return
		}
	}
}

// retryWithVirtualBackoff is the sanctioned shape: backoff is computed as
// a duration and charged to the caller's virtual clock, never slept.
func retryWithVirtualBackoff(attempt func() error, charge func(time.Duration)) error {
	backoff := 200 * time.Millisecond
	for i := 0; i < 4; i++ {
		if err := attempt(); err == nil {
			return nil
		}
		charge(backoff)
		backoff *= 2
	}
	return attempt()
}
