// Package fixture exercises the walltime analyzer; the test type-checks
// it under a deterministic import path (llmsql/internal/exec).
package fixture

import (
	"math/rand"
	"time"
)

func flagged() {
	_ = time.Now()                     // want `time.Now in deterministic package`
	_ = time.Since(time.Time{})        // want `time.Since in deterministic package`
	time.Sleep(time.Millisecond)       // want `time.Sleep in deterministic package`
	<-time.After(time.Second)          // want `time.After in deterministic package`
	_ = time.NewTimer(time.Second)     // want `time.NewTimer in deterministic package`
	_ = rand.Intn(10)                  // want `global rand.Intn in deterministic package`
	_ = rand.Float64()                 // want `global rand.Float64 in deterministic package`
	rand.Shuffle(3, func(i, j int) {}) // want `global rand.Shuffle in deterministic package`
}

func clean(virtualNow func() time.Duration) {
	r := rand.New(rand.NewSource(42)) // seeded constructor: allowed
	_ = r.Intn(10)                    // method on a seeded generator: allowed
	_ = virtualNow()                  // virtual clock: allowed
	_ = time.Duration(5) * time.Millisecond
	_ = time.Unix(0, 0)
	d, _ := time.ParseDuration("3s")
	_ = d
}
