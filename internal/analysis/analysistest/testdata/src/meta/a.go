// Package meta is the fixture for analysistest's own test: a trivial
// analyzer flags every function whose name starts with Bad, so the
// harness's want-matching can be exercised without a real checker.
package meta

// Good is unflagged.
func Good() {}

// BadIdea trips the meta analyzer.
func BadIdea() {} // want `function BadIdea is flagged`

// BadPlan does too, proving multiple diagnostics resolve independently.
func BadPlan() {} // want `function BadPlan is flagged`
