// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against `// want` comments, mirroring the
// x/tools package of the same name.
//
// Fixtures live under a caller-supplied testdata root — the shared tree
// is internal/analysis/testdata/src/<dir>/ — and may import anything
// from the standard library (resolved from the build cache's export
// data). An expectation is written on the line it applies to:
//
//	rows = append(rows, v) // want `map iteration order`
//
// The backquoted pattern is a regular expression matched against the
// diagnostic message; every diagnostic must be wanted and every want must
// be matched, or the test fails. Because some analyzers condition on the
// package's import path (walltime's deterministic-package list), Run
// takes the import path to type-check the fixture under, so one fixture
// directory can be checked as `llmsql/internal/exec` and another as the
// allowlisted `llmsql/internal/serve`.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"llmsql/internal/analysis"
	"llmsql/internal/analysis/driver"
)

// wantRE locates a // want comment; patternRE extracts each backquoted
// pattern after it (`// want `a` `b“ expects two diagnostics).
var (
	wantRE    = regexp.MustCompile("// want (.*)$")
	patternRE = regexp.MustCompile("`([^`]*)`")
)

// Run type-checks the fixture directory testdata/src/<dir> under
// importPath, applies az, and compares diagnostics against the fixture's
// // want comments. testdata is the fixture root — analyzer tests in
// internal/analysis/<name> pass "../testdata" to share the central
// fixture tree.
func Run(t *testing.T, testdata, dir, importPath string, az *analysis.Analyzer) {
	t.Helper()
	fixDir := filepath.Join(testdata, "src", dir)
	entries, err := os.ReadDir(fixDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(fixDir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("no fixture files in %s", fixDir)
	}
	sort.Strings(filenames)

	fset := token.NewFileSet()
	imp := driver.NewImporter(fset, ".")
	files, pkg, info, err := driver.TypeCheck(fset, importPath, filenames, imp)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	type key struct {
		file string
		line int
	}
	// Gather expectations from the fixture sources.
	wants := make(map[key][]*regexp.Regexp)
	for _, name := range filenames {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, pm := range patternRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(pm[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", name, i+1, pm[1], err)
				}
				k := key{file: name, line: i + 1}
				wants[k] = append(wants[k], re)
			}
		}
	}

	// Collect the analyzer's diagnostics.
	var got []driver.Finding
	pass := &analysis.Pass{
		Analyzer:  az,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report: func(d analysis.Diagnostic) {
			got = append(got, driver.Finding{Analyzer: az.Name, Pos: fset.Position(d.Pos), Message: d.Message})
		},
	}
	if _, err := az.Run(pass); err != nil {
		t.Fatalf("%s: %v", az.Name, err)
	}

	// Every diagnostic must match a pending want on its line.
	matched := make(map[key]int)
	for _, f := range got {
		k := key{file: f.Pos.Filename, line: f.Pos.Line}
		res := wants[k]
		found := false
		for _, re := range res {
			if re.MatchString(f.Message) {
				found = true
				matched[k]++
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s", f)
		}
	}
	// Every want must have been matched at least once.
	var unkeys []string
	for k, res := range wants {
		if matched[k] < len(res) {
			unkeys = append(unkeys, fmt.Sprintf("%s:%d", k.file, k.line))
		}
	}
	sort.Strings(unkeys)
	for _, k := range unkeys {
		t.Errorf("no diagnostic at %s (want unmatched)", k)
	}
}
