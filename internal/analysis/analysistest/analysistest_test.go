package analysistest_test

import (
	"go/ast"
	"strings"
	"testing"

	"llmsql/internal/analysis"
	"llmsql/internal/analysis/analysistest"
)

// metaAnalyzer flags every function declaration whose name starts with
// "Bad" — just enough behavior to drive the harness itself through a
// fixture with both flagged and unflagged declarations.
var metaAnalyzer = &analysis.Analyzer{
	Name: "meta",
	Doc:  "flags functions named Bad* (harness self-test only)",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if ok && strings.HasPrefix(fn.Name.Name, "Bad") {
					pass.Reportf(fn.Pos(), "function %s is flagged", fn.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

func TestHarness(t *testing.T) {
	analysistest.Run(t, "testdata", "meta", "llmsql/fixture/meta", metaAnalyzer)
}
