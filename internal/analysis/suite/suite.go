// Package suite enumerates the project's invariant analyzers in the one
// place the multichecker binary, the self-test and the docs all share.
package suite

import (
	"llmsql/internal/analysis"
	"llmsql/internal/analysis/errwrap"
	"llmsql/internal/analysis/lockheld"
	"llmsql/internal/analysis/mapiter"
	"llmsql/internal/analysis/walltime"
)

// All returns every analyzer cmd/llmsqlvet runs, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		errwrap.Analyzer,
		lockheld.Analyzer,
		mapiter.Analyzer,
		walltime.Analyzer,
	}
}
