package suite_test

import (
	"testing"

	"llmsql/internal/analysis/suite"
)

// TestAll pins the suite roster: cmd/llmsqlvet -list, the selftest gate
// and the //llmsql:allow vocabulary all key off these names.
func TestAll(t *testing.T) {
	want := []string{"errwrap", "lockheld", "mapiter", "walltime"}
	got := suite.All()
	if len(got) != len(want) {
		t.Fatalf("suite.All() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, az := range got {
		if az.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, az.Name, want[i])
		}
		if az.Doc == "" || az.Run == nil {
			t.Errorf("analyzer %q is missing Doc or Run", az.Name)
		}
	}
}
