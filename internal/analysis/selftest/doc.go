// Package selftest runs the llmsqlvet analyzer suite over this module
// from inside `go test`, so an invariant violation fails the ordinary
// test run — not just the separate lint-llmsqlvet CI job. The package
// has no non-test code beyond this doc.
package selftest
