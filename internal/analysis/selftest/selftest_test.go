package selftest_test

import (
	"os/exec"
	"strings"
	"testing"

	"llmsql/internal/analysis/driver"
	"llmsql/internal/analysis/suite"
)

// TestLlmsqlvetOnSelf is the vet-tool-on-itself gate: every package of
// this module must pass the invariant analyzers, with any waiver spelled
// as a reasoned //llmsql:allow comment. One t.Error per finding keeps the
// failure output identical to what `make llmsqlvet` prints.
func TestLlmsqlvetOnSelf(t *testing.T) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	root := strings.TrimSpace(string(out))
	findings, err := driver.Run(root, []string{"./..."}, suite.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
