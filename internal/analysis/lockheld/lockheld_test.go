package lockheld_test

import (
	"testing"

	"llmsql/internal/analysis/analysistest"
	"llmsql/internal/analysis/lockheld"
)

func TestLockheld(t *testing.T) {
	analysistest.Run(t, "../testdata", "lockheld", "llmsql/fixture/lockheld", lockheld.Analyzer)
}
