// Package lockheld flags model calls and network I/O made while a mutex
// acquired in the same function is still held.
//
// The serving stack layers per-session engines over a shared coalescer;
// a Model.Complete call — seconds of simulated latency, real network
// time in production — made under a sync.Mutex serializes every session
// behind one model round-trip, and under the coalescer's own lock it is
// a deadlock waiting to happen. The correct shape (see llm.Coalescer) is
// lock → consult/record state → unlock → call → lock → publish.
//
// The analysis is a single-function, source-order walk: it tracks
// mu.Lock()/mu.RLock() acquisitions (keyed by the receiver expression),
// releases via mu.Unlock()/mu.RUnlock(), treats `defer mu.Unlock()` as
// holding until return, and reports any blocking call — a method named
// Complete, or dialing/serving calls into net and net/http — reached
// while the held-set is non-empty. Branch-sensitive release patterns
// (unlock-and-return in an if body) are approximated in source order, so
// rare legitimate hold-across-call sites need an `//llmsql:allow
// lockheld <reason>` waiver.
package lockheld

import (
	"go/ast"
	"go/types"
	"strings"

	"llmsql/internal/analysis"
	"llmsql/internal/analysis/astq"
)

// Analyzer is the lockheld checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "flags Model.Complete and network I/O while a mutex is held",
	Run:  run,
}

// netBlocking lists package-level blocking entry points per package.
var netBlocking = map[string]map[string]bool{
	"net": {
		"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true,
		"DialUnix": true, "DialIP": true, "Listen": true, "ListenTCP": true,
		"ListenUnix": true, "ListenPacket": true, "LookupHost": true, "LookupAddr": true,
	},
	"net/http": {
		"Get": true, "Post": true, "PostForm": true, "Head": true,
		"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true,
	},
}

// httpClientMethods are the blocking *http.Client methods.
var httpClientMethods = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body)
				}
				return false // checkBody descends into nested literals itself
			case *ast.FuncLit:
				// Reached only for literals outside any FuncDecl (package
				// var initializers); function-local literals are walked by
				// their enclosing checkBody.
				checkBody(pass, fn.Body)
				return false
			}
			return true
		})
	}
	return nil, nil
}

// checkBody walks one function body in source order, tracking the set of
// held mutexes and reporting blocking calls made while it is non-empty.
// Nested function literals get a fresh held-set: they do not run at
// their lexical position, and a literal handed to another goroutine does
// not hold its creator's locks.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	held := make(map[string]bool)
	var heldNames []string // insertion-ordered for stable messages

	release := func(key string) {
		if held[key] {
			delete(held, key)
			for i, n := range heldNames {
				if n == key {
					heldNames = append(heldNames[:i], heldNames[i+1:]...)
					break
				}
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, x.Body)
			return false

		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to return; a deferred
			// closure still gets its own body checked.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				checkBody(pass, lit.Body)
			}
			return false

		case *ast.CallExpr:
			if key, op, ok := lockOp(pass.TypesInfo, x); ok {
				switch op {
				case "Lock", "RLock":
					if !held[key] {
						held[key] = true
						heldNames = append(heldNames, key)
					}
				case "Unlock", "RUnlock":
					release(key)
				}
				return true
			}
			if len(heldNames) > 0 {
				if what, ok := blockingCall(pass.TypesInfo, x); ok {
					pass.Reportf(x.Pos(), "%s called while holding %s: release the lock before blocking calls",
						what, strings.Join(heldNames, ", "))
				}
			}
		}
		return true
	})
}

// lockOp recognizes calls to sync.Mutex/RWMutex lock methods (including
// through embedding) and returns the receiver expression as the lock's
// identity plus the operation name.
func lockOp(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := astq.Callee(info, call)
	if fn == nil || astq.PkgPath(fn) != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// blockingCall recognizes the calls that must not run under a lock and
// names them for the diagnostic.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := astq.Callee(info, call)
	if fn == nil {
		return "", false
	}
	pkg := astq.PkgPath(fn)
	if astq.IsPkgLevel(fn) {
		if netBlocking[pkg][fn.Name()] {
			return pkg + "." + fn.Name(), true
		}
		return "", false
	}
	// Methods: any Complete (the Model contract), and http.Client's
	// request methods.
	if fn.Name() == "Complete" {
		return recvString(fn) + ".Complete", true
	}
	if pkg == "net/http" && httpClientMethods[fn.Name()] {
		return "http.Client." + fn.Name(), true
	}
	return "", false
}

// recvString names a method's receiver type for diagnostics.
func recvString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return types.TypeString(t, nil)
}
