// Package errwrap flags fmt.Errorf calls that format an error operand
// with %v or %s instead of %w.
//
// The engine facade wraps storage, planner and backend failures in
// layered context; callers (and the serve protocol's machine-readable
// rejection codes) rely on errors.Is/errors.As seeing through every
// layer. A %v in the chain silently flattens the wrapped error into
// text and breaks that contract. The analyzer parses the (constant)
// format string, pairs verbs with operands — flags, width/precision
// including '*', and explicit [n] argument indexes are understood — and
// reports every error-typed operand rendered by a %v or %s verb.
// Deliberate flattening (hiding an internal error from a public API)
// takes an `//llmsql:allow errwrap <reason>` waiver.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"llmsql/internal/analysis"
	"llmsql/internal/analysis/astq"
)

// Analyzer is the errwrap checker.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "flags fmt.Errorf formatting an error with %v/%s instead of %w",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astq.Callee(pass.TypesInfo, call)
			if fn == nil || astq.PkgPath(fn) != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
				return true
			}
			format, ok := constString(pass.TypesInfo, call.Args[0])
			if !ok {
				return true
			}
			for _, v := range parseVerbs(format) {
				if v.verb != 'v' && v.verb != 's' {
					continue
				}
				argIdx := 1 + v.operand // call args: format, operands...
				if argIdx >= len(call.Args) {
					continue // malformed format; vet's printf check owns that
				}
				arg := call.Args[argIdx]
				tv, ok := pass.TypesInfo.Types[arg]
				if !ok || !types.Implements(tv.Type, errType) {
					continue
				}
				pass.Reportf(arg.Pos(),
					"error formatted with %%%c; use %%w so errors.Is/As see through the wrap", v.verb)
			}
			return true
		})
	}
	return nil, nil
}

// constString resolves e to its constant string value if it has one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// verbUse pairs one conversion verb with the zero-based operand index it
// consumes.
type verbUse struct {
	verb    rune
	operand int
}

// parseVerbs scans a Printf format string, resolving '*' width/precision
// and explicit [n] argument indexes the way fmt does.
func parseVerbs(format string) []verbUse {
	var uses []verbUse
	next := 0 // next operand index
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// Flags.
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// Width (possibly '*', which consumes an operand).
		i = skipNumOrStar(format, i, &next)
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			i = skipNumOrStar(format, i, &next)
		}
		// Explicit argument index [n].
		if i < len(format) && format[i] == '[' {
			j := strings.IndexByte(format[i:], ']')
			if j < 0 {
				break // malformed; give up on the rest
			}
			if n, err := strconv.Atoi(format[i+1 : i+j]); err == nil && n >= 1 {
				next = n - 1
			}
			i += j + 1
		}
		if i >= len(format) {
			break
		}
		uses = append(uses, verbUse{verb: rune(format[i]), operand: next})
		next++
		i++
	}
	return uses
}

// skipNumOrStar advances past a numeric width/precision or a '*'
// (consuming one operand for the latter).
func skipNumOrStar(format string, i int, next *int) int {
	if i < len(format) && format[i] == '*' {
		*next++
		return i + 1
	}
	for i < len(format) && format[i] >= '0' && format[i] <= '9' {
		i++
	}
	return i
}
