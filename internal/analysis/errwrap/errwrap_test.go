package errwrap_test

import (
	"testing"

	"llmsql/internal/analysis/analysistest"
	"llmsql/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, "../testdata", "errwrap", "llmsql/fixture/errwrap", errwrap.Analyzer)
}
