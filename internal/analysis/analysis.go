// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis API: just enough surface — Analyzer, Pass,
// Diagnostic — to write the project's invariant checkers (see the mapiter,
// walltime, lockheld and errwrap subpackages) against the familiar shape,
// without pulling x/tools into the module.
//
// The deliberate API mirroring means each checker's Run function would
// compile against the real x/tools Pass with only an import swap, should
// the module ever take on that dependency. What is intentionally missing:
// Requires/ResultOf fact plumbing (the checkers are all single-pass),
// SuggestedFixes, and the unitchecker protocol — the driver subpackage
// loads packages and runs analyzers directly instead, so the suite works
// offline from a plain `go build` toolchain.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //llmsql:allow suppression comments. It must be a valid
	// identifier.
	Name string
	// Doc is the analyzer's help text; its first line is the summary.
	Doc string
	// Run applies the analyzer to one package and reports findings via
	// pass.Report. The returned value is ignored by the driver (kept in
	// the signature for x/tools shape compatibility).
	Run func(*Pass) (any, error)
}

// Pass is the input to an Analyzer's Run: one type-checked package.
type Pass struct {
	// Analyzer is the checker being run, so shared helpers can tell who
	// is reporting.
	Analyzer *Analyzer
	// Fset maps token positions of Files back to file/line/column.
	Fset *token.FileSet
	// Files are the package's syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo carries the type checker's results for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding in p.Fset.
	Pos token.Pos
	// Message states the violated invariant and, where possible, the fix.
	Message string
}
