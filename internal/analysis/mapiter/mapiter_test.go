package mapiter_test

import (
	"testing"

	"llmsql/internal/analysis/analysistest"
	"llmsql/internal/analysis/mapiter"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, "../testdata", "mapiter", "llmsql/fixture/mapiter", mapiter.Analyzer)
}
