// Package mapiter flags `range` loops over maps whose iteration order can
// leak into ordered output — the number-one way to silently break the
// engine's byte-identical-rows guarantee.
//
// Go randomizes map iteration order on purpose, so anything
// order-sensitive built inside such a loop is nondeterministic: rows,
// prompt strings, deparsed SQL, log lines, any appended slice. The
// analyzer reports a map range whose body
//
//   - appends to a slice that outlives the loop, unless that slice is
//     passed to a sort.* / slices.Sort* call later in the same function
//     (the canonical collect-then-sort idiom),
//   - concatenates onto a string that outlives the loop,
//   - writes into a strings.Builder, bytes.Buffer or io.Writer that
//     outlives the loop,
//   - sends on a channel, or
//   - prints via fmt.Print*/Fprint*.
//
// Pure order-insensitive bodies — counters, min/max folds, writes into
// another map, delete — pass clean. Collecting into a slice that a
// *caller* sorts is invisible to this single-function analysis; such
// sites need an `//llmsql:allow mapiter <reason>` waiver, which is the
// point: every escape of map order from a loop carries a written
// justification.
package mapiter

import (
	"go/ast"
	"go/types"

	"llmsql/internal/analysis"
	"llmsql/internal/analysis/astq"
)

// Analyzer is the mapiter checker.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flags map iteration whose order can reach rows, prompts, or other ordered output",
	Run:  run,
}

// sortFuncs are the calls that establish a deterministic order for a
// collected slice, keyed by package path.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// writeMethods are the ordered-sink methods on builders, buffers and
// writers.
var writeMethods = map[string]bool{
	"WriteString": true, "WriteByte": true, "WriteRune": true, "Write": true,
}

// printFuncs are the fmt functions that emit directly in argument order.
var printFuncs = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

// checkFunc inspects every map range inside one top-level function
// (function literals included — a sort anywhere later in the same
// top-level body still counts as the ordering step).
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, fn, rng)
		return true
	})
}

// checkMapRange hunts for order-sensitive sinks in one map range body.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "send inside map iteration: channel receives values in map order")

		case *ast.AssignStmt:
			checkStringConcat(pass, rng, x)

		case *ast.CallExpr:
			switch {
			case astq.IsBuiltin(info, x, "append"):
				checkAppend(pass, fn, rng, x)
			default:
				checkCallSink(pass, rng, x)
			}
		}
		return true
	})
}

// checkAppend flags append calls whose destination outlives the loop and
// is never sorted afterwards in the same function.
func checkAppend(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := astq.Object(pass.TypesInfo, call.Args[0])
	if dst == nil {
		// Can't resolve the destination; stay quiet rather than guess.
		return
	}
	if astq.DeclaredWithin(dst, rng.Body) {
		return // per-iteration slice, order can't escape the iteration
	}
	if sortedAfter(pass.TypesInfo, fn, rng, dst) {
		return
	}
	pass.Reportf(call.Pos(),
		"append to %s inside map iteration without a later sort: slice order follows map order", dst.Name())
}

// sortedAfter reports whether obj is passed to a recognized sort call
// after the range statement, anywhere in the enclosing function.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() || len(call.Args) == 0 {
			return true
		}
		callee := astq.Callee(info, call)
		if callee == nil || !sortFuncs[astq.PkgPath(callee)][callee.Name()] {
			return true
		}
		if astq.Object(info, call.Args[0]) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkStringConcat flags `s += ...` where s outlives the loop.
func checkStringConcat(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	if as.Tok.String() != "+=" || len(as.Lhs) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[as.Lhs[0]]
	if !ok {
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); !ok || basic.Info()&types.IsString == 0 {
		return
	}
	dst := astq.Object(pass.TypesInfo, as.Lhs[0])
	if dst == nil || astq.DeclaredWithin(dst, rng.Body) {
		return
	}
	pass.Reportf(as.Pos(),
		"string built inside map iteration: %s concatenates in map order", dst.Name())
}

// checkCallSink flags writer methods and fmt printing inside the loop.
func checkCallSink(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	callee := astq.Callee(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if astq.PkgPath(callee) == "fmt" && printFuncs[callee.Name()] {
		pass.Reportf(call.Pos(), "fmt.%s inside map iteration emits in map order", callee.Name())
		return
	}
	if !writeMethods[callee.Name()] || astq.IsPkgLevel(callee) {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := astq.Object(pass.TypesInfo, sel.X)
	if recv == nil || astq.DeclaredWithin(recv, rng.Body) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s.%s inside map iteration writes in map order", recv.Name(), callee.Name())
}
