package metrics

import (
	"math"
	"testing"
	"time"

	"llmsql/internal/rel"
)

func truthRows() []rel.Row {
	return []rel.Row{
		{rel.Text("France"), rel.Text("Paris"), rel.Int(68)},
		{rel.Text("Japan"), rel.Text("Tokyo"), rel.Int(125)},
		{rel.Text("Brazil"), rel.Text("Brasilia"), rel.Int(214)},
		{rel.Text("Italy"), rel.Text("Rome"), rel.Int(59)},
	}
}

func TestComparePerfectRetrieval(t *testing.T) {
	m := Compare(truthRows(), truthRows(), Options{})
	if m.Precision() != 1 || m.Recall() != 1 || m.F1() != 1 {
		t.Fatalf("perfect: %+v", m)
	}
	if m.ExactPrecision() != 1 || m.AttrAccuracy() != 1 || m.HallucinationRate() != 0 {
		t.Fatalf("perfect cells: %+v", m)
	}
}

func TestComparePartialRetrieval(t *testing.T) {
	result := []rel.Row{
		{rel.Text("France"), rel.Text("Paris"), rel.Int(68)},       // exact
		{rel.Text("Japan"), rel.Text("Kyoto"), rel.Int(125)},       // wrong capital
		{rel.Text("Atlantis"), rel.Text("Poseidonia"), rel.Int(1)}, // hallucinated
	}
	m := Compare(result, truthRows(), Options{})
	if m.KeyMatched != 2 || m.Hallucinated != 1 || m.KeysRecalled != 2 {
		t.Fatalf("counts: %+v", m)
	}
	if p := m.Precision(); math.Abs(p-2.0/3) > 1e-9 {
		t.Fatalf("precision: %f", p)
	}
	if r := m.Recall(); r != 0.5 {
		t.Fatalf("recall: %f", r)
	}
	if m.ExactMatched != 1 {
		t.Fatalf("exact: %+v", m)
	}
	// Cells: 2 matched rows x 2 attr cols = 4 compared, 3 correct.
	if m.CellsCompared != 4 || m.CellsCorrect != 3 {
		t.Fatalf("cells: %+v", m)
	}
	if hr := m.HallucinationRate(); math.Abs(hr-1.0/3) > 1e-9 {
		t.Fatalf("hallucination: %f", hr)
	}
}

func TestCompareDuplicateResultRows(t *testing.T) {
	result := []rel.Row{
		{rel.Text("France"), rel.Text("Paris"), rel.Int(68)},
		{rel.Text("France"), rel.Text("Paris"), rel.Int(68)},
	}
	m := Compare(result, truthRows(), Options{})
	// Duplicates inflate precision denominator but recall counts distinct.
	if m.KeysRecalled != 1 || m.KeyMatched != 2 {
		t.Fatalf("dup: %+v", m)
	}
	if m.Recall() != 0.25 {
		t.Fatalf("dup recall: %f", m.Recall())
	}
}

func TestCompareNumericTolerance(t *testing.T) {
	result := []rel.Row{
		{rel.Text("France"), rel.Text("Paris"), rel.Int(70)}, // ~3% off
	}
	strict := Compare(result, truthRows(), Options{})
	if strict.CellsCorrect != 1 { // capital correct, population wrong
		t.Fatalf("strict: %+v", strict)
	}
	loose := Compare(result, truthRows(), Options{NumTolerance: 0.05})
	if loose.CellsCorrect != 2 {
		t.Fatalf("loose: %+v", loose)
	}
}

func TestCompareRestrictedColumns(t *testing.T) {
	result := []rel.Row{
		{rel.Text("France"), rel.Text("WRONG"), rel.Int(68)},
	}
	m := Compare(result, truthRows(), Options{CompareCols: []int{2}})
	if m.CellsCompared != 1 || m.CellsCorrect != 1 || m.ExactMatched != 1 {
		t.Fatalf("restricted: %+v", m)
	}
}

func TestCompareEmptyInputs(t *testing.T) {
	m := Compare(nil, truthRows(), Options{})
	if m.Precision() != 0 || m.Recall() != 0 || m.F1() != 0 {
		t.Fatalf("empty result: %+v", m)
	}
	m = Compare(truthRows(), nil, Options{})
	if m.Recall() != 0 || m.Hallucinated != 4 {
		t.Fatalf("empty truth: %+v", m)
	}
	if m.CardinalityError() != 0 {
		t.Fatalf("empty truth cardinality: %f", m.CardinalityError())
	}
}

func TestCardinalityError(t *testing.T) {
	m := Compare(truthRows()[:2], truthRows(), Options{})
	if m.CardinalityError() != 0.5 {
		t.Fatalf("cardinality: %f", m.CardinalityError())
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b rel.Value
		tol  float64
		want bool
	}{
		{rel.Text("Paris"), rel.Text("paris "), 0, true},
		{rel.Text("Paris"), rel.Text("Lyon"), 0, false},
		{rel.Int(100), rel.Int(100), 0, true},
		{rel.Int(103), rel.Int(100), 0.05, true},
		{rel.Int(110), rel.Int(100), 0.05, false},
		{rel.Float(2.0), rel.Int(2), 0, true},
		{rel.Null(), rel.Null(), 0, true},
		{rel.Null(), rel.Int(1), 0, false},
		{rel.Text("68"), rel.Int(68), 0, true},
		{rel.Text("abc"), rel.Int(68), 0, false},
		// Small numbers use absolute floor max(1, |truth|).
		{rel.Float(0.01), rel.Float(0.02), 0.05, true},
	}
	for _, c := range cases {
		if got := ValueEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ValueEqual(%v,%v,%g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestScalarError(t *testing.T) {
	if e := ScalarError(rel.Int(90), rel.Int(100)); math.Abs(e-0.1) > 1e-9 {
		t.Fatalf("scalar error: %f", e)
	}
	if e := ScalarError(rel.Null(), rel.Int(100)); e != 1 {
		t.Fatalf("null got: %f", e)
	}
	if e := ScalarError(rel.Null(), rel.Null()); e != 0 {
		t.Fatalf("both null: %f", e)
	}
	if e := ScalarError(rel.Text("x"), rel.Text("x")); e != 0 {
		t.Fatalf("text equal: %f", e)
	}
	if e := ScalarError(rel.Text("x"), rel.Text("y")); e != 1 {
		t.Fatalf("text differ: %f", e)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("mean: %f", m)
	}
}

func TestCompareCompositeKey(t *testing.T) {
	truth := []rel.Row{
		{rel.Text("A"), rel.Int(1), rel.Text("x")},
		{rel.Text("A"), rel.Int(2), rel.Text("y")},
	}
	result := []rel.Row{
		{rel.Text("A"), rel.Int(2), rel.Text("y")},
	}
	m := Compare(result, truth, Options{KeyIdx: []int{0, 1}})
	if m.KeyMatched != 1 || m.Recall() != 0.5 || m.ExactMatched != 1 {
		t.Fatalf("composite key: %+v", m)
	}
}

func TestEfficiency(t *testing.T) {
	e := Efficiency{
		Calls: 100, CachedCalls: 20, Tokens: 5000,
		TotalLatency: 80 * time.Second, WallLatency: 10 * time.Second,
		CacheHits: 20, CacheMisses: 80,
	}
	if got := e.Speedup(); got != 8 {
		t.Fatalf("speedup: %v", got)
	}
	if got := e.CacheHitRate(); got != 0.2 {
		t.Fatalf("hit rate: %v", got)
	}
	zero := Efficiency{}
	if zero.Speedup() != 1 || zero.CacheHitRate() != 0 {
		t.Fatalf("zero-value efficiency: %v %v", zero.Speedup(), zero.CacheHitRate())
	}
}
