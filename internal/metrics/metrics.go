// Package metrics scores LLM-retrieved relations against ground truth:
// tuple-set precision/recall/F1 at entity-key granularity, exact-row
// matching with numeric tolerance, per-cell attribute accuracy,
// hallucination rate, and relative error of aggregate answers. It also
// summarizes execution cost (Efficiency): calls, tokens, total vs
// critical-path simulated latency, and completion-cache effectiveness.
package metrics

import (
	"math"
	"strings"
	"time"

	"llmsql/internal/rel"
)

// Efficiency summarizes the execution cost of an LLM-backed query or scan.
// TotalLatency accumulates every call as if serial; WallLatency is the
// simulated critical path under the engine's worker pool, so
// TotalLatency/WallLatency is the concurrency speedup.
type Efficiency struct {
	// Calls issued to the model; CachedCalls of them were answered by a
	// completion cache at zero cost.
	Calls       int
	CachedCalls int
	// Tokens is prompt+completion tokens actually charged.
	Tokens int
	// TotalLatency is the accumulated simulated latency of all calls.
	TotalLatency time.Duration
	// WallLatency is the simulated critical-path (wall-clock) latency.
	WallLatency time.Duration
	// CacheHits and CacheMisses count completion-cache lookups.
	CacheHits   int
	CacheMisses int
}

// Speedup is total over wall latency: how much concurrency compressed the
// serial cost (1 when unknown). Cached calls contribute zero to both
// latencies, so the ratio measures concurrency overlap only — cache
// effectiveness is CacheHitRate.
func (e Efficiency) Speedup() float64 {
	if e.WallLatency <= 0 || e.TotalLatency <= 0 {
		return 1
	}
	return float64(e.TotalLatency) / float64(e.WallLatency)
}

// CacheHitRate is hits over cache lookups (0 before any lookup).
func (e Efficiency) CacheHitRate() float64 {
	if e.CacheHits+e.CacheMisses == 0 {
		return 0
	}
	return float64(e.CacheHits) / float64(e.CacheHits+e.CacheMisses)
}

// SetMetrics compares a retrieved row set against ground truth.
type SetMetrics struct {
	// TruthRows and ResultRows are the input cardinalities.
	TruthRows  int
	ResultRows int
	// KeyMatched counts result rows whose entity key exists in the truth.
	KeyMatched int
	// KeysRecalled counts distinct truth keys present in the result.
	KeysRecalled int
	// ExactMatched counts result rows equal to their truth row in every
	// compared cell (within tolerance).
	ExactMatched int
	// Hallucinated counts result rows whose key does not exist in truth.
	Hallucinated int
	// CellsCompared and CellsCorrect track non-key attribute cells of
	// key-matched rows.
	CellsCompared int
	CellsCorrect  int
}

// Precision is key-level: matched result rows / all result rows.
func (m SetMetrics) Precision() float64 {
	if m.ResultRows == 0 {
		return 0
	}
	return float64(m.KeyMatched) / float64(m.ResultRows)
}

// Recall is key-level: distinct truth keys retrieved / truth rows.
func (m SetMetrics) Recall() float64 {
	if m.TruthRows == 0 {
		return 0
	}
	return float64(m.KeysRecalled) / float64(m.TruthRows)
}

// F1 is the harmonic mean of Precision and Recall.
func (m SetMetrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ExactPrecision counts fully correct rows over all result rows.
func (m SetMetrics) ExactPrecision() float64 {
	if m.ResultRows == 0 {
		return 0
	}
	return float64(m.ExactMatched) / float64(m.ResultRows)
}

// AttrAccuracy is the fraction of compared attribute cells that are
// correct.
func (m SetMetrics) AttrAccuracy() float64 {
	if m.CellsCompared == 0 {
		return 0
	}
	return float64(m.CellsCorrect) / float64(m.CellsCompared)
}

// HallucinationRate is the fraction of result rows with unknown keys.
func (m SetMetrics) HallucinationRate() float64 {
	if m.ResultRows == 0 {
		return 0
	}
	return float64(m.Hallucinated) / float64(m.ResultRows)
}

// CardinalityError is |result - truth| / truth.
func (m SetMetrics) CardinalityError() float64 {
	if m.TruthRows == 0 {
		return 0
	}
	return math.Abs(float64(m.ResultRows)-float64(m.TruthRows)) / float64(m.TruthRows)
}

// Options tunes row comparison.
type Options struct {
	// KeyIdx lists the key column positions (defaults to [0]).
	KeyIdx []int
	// NumTolerance accepts numeric cells within this relative error
	// (|a-b| <= tol * max(1,|truth|)). 0 requires exact equality.
	NumTolerance float64
	// CompareCols restricts cell comparison to these positions (nil = all
	// non-key columns).
	CompareCols []int
}

// Compare scores result against truth.
func Compare(result, truth []rel.Row, opt Options) SetMetrics {
	keyIdx := opt.KeyIdx
	if len(keyIdx) == 0 {
		keyIdx = []int{0}
	}
	truthByKey := make(map[string]rel.Row, len(truth))
	for _, row := range truth {
		truthByKey[normKey(row, keyIdx)] = row
	}

	m := SetMetrics{TruthRows: len(truth), ResultRows: len(result)}
	recalled := map[string]bool{}
	width := 0
	if len(truth) > 0 {
		width = len(truth[0])
	}
	compareCols := opt.CompareCols
	if compareCols == nil {
		isKey := map[int]bool{}
		for _, k := range keyIdx {
			isKey[k] = true
		}
		for i := 0; i < width; i++ {
			if !isKey[i] {
				compareCols = append(compareCols, i)
			}
		}
	}

	for _, row := range result {
		key := normKey(row, keyIdx)
		truthRow, ok := truthByKey[key]
		if !ok {
			m.Hallucinated++
			continue
		}
		m.KeyMatched++
		recalled[key] = true
		exact := true
		for _, c := range compareCols {
			if c >= len(row) || c >= len(truthRow) {
				exact = false
				continue
			}
			m.CellsCompared++
			if ValueEqual(row[c], truthRow[c], opt.NumTolerance) {
				m.CellsCorrect++
			} else {
				exact = false
			}
		}
		if exact {
			m.ExactMatched++
		}
	}
	m.KeysRecalled = len(recalled)
	return m
}

func normKey(row rel.Row, keyIdx []int) string {
	return row.Key(keyIdx)
}

// ValueEqual compares two cells: NULLs match NULLs, text matches
// case-insensitively after trimming, numerics match within the relative
// tolerance.
func ValueEqual(got, want rel.Value, tol float64) bool {
	if got.IsNull() || want.IsNull() {
		return got.IsNull() && want.IsNull()
	}
	if got.Type().Numeric() || want.Type().Numeric() {
		gf, gerr := rel.Coerce(got, rel.TypeFloat)
		wf, werr := rel.Coerce(want, rel.TypeFloat)
		if gerr != nil || werr != nil {
			return false
		}
		g, w := gf.AsFloat(), wf.AsFloat()
		if g == w {
			return true
		}
		limit := tol * math.Max(1, math.Abs(w))
		return math.Abs(g-w) <= limit
	}
	return strings.EqualFold(strings.TrimSpace(got.AsText()), strings.TrimSpace(want.AsText()))
}

// ScalarError returns the relative error of an aggregate answer:
// |got - want| / max(1, |want|). NULL answers count as error 1.
func ScalarError(got, want rel.Value) float64 {
	if want.IsNull() {
		if got.IsNull() {
			return 0
		}
		return 1
	}
	if got.IsNull() {
		return 1
	}
	gf, gerr := rel.Coerce(got, rel.TypeFloat)
	wf, werr := rel.Coerce(want, rel.TypeFloat)
	if gerr != nil || werr != nil {
		if ValueEqual(got, want, 0) {
			return 0
		}
		return 1
	}
	return math.Abs(gf.AsFloat()-wf.AsFloat()) / math.Max(1, math.Abs(wf.AsFloat()))
}

// Mean averages a float slice (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
