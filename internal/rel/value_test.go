package rel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() must be null")
	}
	if Null().Type() != TypeUnknown {
		t.Fatalf("bare NULL type = %v", Null().Type())
	}
	if NullOf(TypeInt).Type() != TypeInt || !NullOf(TypeInt).IsNull() {
		t.Fatal("NullOf must keep declared type and be null")
	}
	if v := Int(42); v.AsInt() != 42 || v.Type() != TypeInt || v.IsNull() {
		t.Fatalf("Int: %v", v)
	}
	if v := Float(2.5); v.AsFloat() != 2.5 || v.Type() != TypeFloat {
		t.Fatalf("Float: %v", v)
	}
	if v := Text("hi"); v.AsText() != "hi" || v.Type() != TypeText {
		t.Fatalf("Text: %v", v)
	}
	if v := Bool(true); !v.AsBool() || v.Type() != TypeBool {
		t.Fatalf("Bool: %v", v)
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-7), "-7"},
		{Float(3.25), "3.25"},
		{Text("abc"), "abc"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := Text("O'Brien").SQLLiteral(); got != "'O''Brien'" {
		t.Fatalf("SQLLiteral escaping: %q", got)
	}
	if got := Int(5).SQLLiteral(); got != "5" {
		t.Fatalf("int literal: %q", got)
	}
	if got := Null().SQLLiteral(); got != "NULL" {
		t.Fatalf("null literal: %q", got)
	}
}

func TestCompareNumericPromotion(t *testing.T) {
	c, ts := Compare(Int(2), Float(2.0))
	if ts != True || c != 0 {
		t.Fatalf("2 == 2.0: c=%d ts=%v", c, ts)
	}
	c, ts = Compare(Int(2), Float(2.5))
	if ts != True || c != -1 {
		t.Fatalf("2 < 2.5: c=%d ts=%v", c, ts)
	}
}

func TestCompareNullIsUnknown(t *testing.T) {
	if _, ts := Compare(Null(), Int(1)); ts != Unknown {
		t.Fatal("NULL comparison must be Unknown")
	}
	if _, ts := Compare(Int(1), Null()); ts != Unknown {
		t.Fatal("NULL comparison must be Unknown")
	}
}

func TestCompareTextNumericLeniency(t *testing.T) {
	// Text "120" vs Int 120 compares equal (lenient LLM-value path).
	c, ts := Compare(Text("120"), Int(120))
	if ts != True || c != 0 {
		t.Fatalf("text-number leniency failed: c=%d ts=%v", c, ts)
	}
	c, ts = Compare(Text("abc"), Text("abd"))
	if ts != True || c != -1 {
		t.Fatalf("text compare: c=%d ts=%v", c, ts)
	}
}

func TestTristateLogic(t *testing.T) {
	tt := []struct {
		a, b    Tristate
		and, or Tristate
	}{
		{True, True, True, True},
		{True, False, False, True},
		{True, Unknown, Unknown, True},
		{False, Unknown, False, Unknown},
		{Unknown, Unknown, Unknown, Unknown},
		{False, False, False, False},
	}
	for _, c := range tt {
		if got := c.a.And(c.b); got != c.and {
			t.Errorf("%v AND %v = %v, want %v", c.a, c.b, got, c.and)
		}
		if got := c.b.And(c.a); got != c.and {
			t.Errorf("AND not commutative for %v,%v", c.a, c.b)
		}
		if got := c.a.Or(c.b); got != c.or {
			t.Errorf("%v OR %v = %v, want %v", c.a, c.b, got, c.or)
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Fatal("NOT table wrong")
	}
}

func TestIdenticalToAndHash(t *testing.T) {
	if !Null().IdenticalTo(NullOf(TypeInt)) {
		t.Fatal("NULL identical to NULL")
	}
	if Null().IdenticalTo(Int(0)) {
		t.Fatal("NULL not identical to 0")
	}
	if !Int(2).IdenticalTo(Float(2.0)) {
		t.Fatal("2 identical to 2.0")
	}
	if Int(2).Hash() != Float(2.0).Hash() {
		t.Fatal("identical values must hash equal")
	}
	if Text("a").Hash() == Text("b").Hash() {
		t.Fatal("suspicious hash collision for a/b")
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		in      Value
		to      DataType
		want    Value
		wantErr bool
	}{
		{Text("1,234,567"), TypeInt, Int(1234567), false},
		{Text("3.5"), TypeFloat, Float(3.5), false},
		{Text(" 42 "), TypeInt, Int(42), false},
		{Float(2.6), TypeInt, Int(3), false},
		{Int(1), TypeBool, Bool(true), false},
		{Text("yes"), TypeBool, Bool(true), false},
		{Text("No"), TypeBool, Bool(false), false},
		{Text("abc"), TypeInt, Value{}, true},
		{Int(7), TypeText, Text("7"), false},
		{Null(), TypeInt, NullOf(TypeInt), false},
	}
	for _, c := range cases {
		got, err := Coerce(c.in, c.to)
		if c.wantErr {
			if err == nil {
				t.Errorf("Coerce(%v,%v): want error", c.in, c.to)
			}
			continue
		}
		if err != nil {
			t.Errorf("Coerce(%v,%v): %v", c.in, c.to, err)
			continue
		}
		if !got.IdenticalTo(c.want) || got.Type() != c.want.Type() {
			t.Errorf("Coerce(%v,%v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
}

func TestParseTyped(t *testing.T) {
	v, err := ParseTyped("", TypeInt)
	if err != nil || !v.IsNull() {
		t.Fatalf("empty -> NULL, got %v %v", v, err)
	}
	v, err = ParseTyped("n/a", TypeFloat)
	if err != nil || !v.IsNull() {
		t.Fatalf("n/a -> NULL, got %v %v", v, err)
	}
	v, err = ParseTyped("1,400", TypeInt)
	if err != nil || v.AsInt() != 1400 {
		t.Fatalf("1,400 -> 1400, got %v %v", v, err)
	}
	v, err = ParseTyped("  spaced  ", TypeText)
	if err != nil || v.AsText() != "spaced" {
		t.Fatalf("text trim, got %q %v", v.AsText(), err)
	}
}

func TestParseDataType(t *testing.T) {
	for name, want := range map[string]DataType{
		"int": TypeInt, "INTEGER": TypeInt, "bigint": TypeInt,
		"float": TypeFloat, "DOUBLE": TypeFloat, "real": TypeFloat,
		"text": TypeText, "VARCHAR(30)": TypeText, "string": TypeText,
		"bool": TypeBool, "BOOLEAN": TypeBool,
	} {
		got, err := ParseDataType(name)
		if err != nil || got != want {
			t.Errorf("ParseDataType(%q) = %v,%v want %v", name, got, err, want)
		}
	}
	if _, err := ParseDataType("blob"); err == nil {
		t.Fatal("blob should be unknown")
	}
}

func TestCommonType(t *testing.T) {
	cases := []struct{ a, b, want DataType }{
		{TypeInt, TypeInt, TypeInt},
		{TypeInt, TypeFloat, TypeFloat},
		{TypeText, TypeInt, TypeText},
		{TypeUnknown, TypeBool, TypeBool},
		{TypeBool, TypeInt, TypeUnknown},
	}
	for _, c := range cases {
		if got := CommonType(c.a, c.b); got != c.want {
			t.Errorf("CommonType(%v,%v) = %v want %v", c.a, c.b, got, c.want)
		}
		if got := CommonType(c.b, c.a); got != c.want {
			t.Errorf("CommonType not symmetric for %v,%v", c.a, c.b)
		}
	}
}

// Property: Compare is antisymmetric and Equal consistent with Compare for
// non-null int/float pairs.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		c1, t1 := Compare(Int(a), Int(b))
		c2, t2 := Compare(Int(b), Int(a))
		if t1 != True || t2 != True {
			return false
		}
		return c1 == -c2 && (c1 == 0) == Equal(Int(a), Int(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Coerce to text then parse back preserves int values.
func TestIntTextRoundTripProperty(t *testing.T) {
	f := func(a int64) bool {
		txt, err := Coerce(Int(a), TypeText)
		if err != nil {
			return false
		}
		back, err := Coerce(txt, TypeInt)
		return err == nil && back.AsInt() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hash consistency with IdenticalTo over float/int mirror values.
func TestHashConsistencyProperty(t *testing.T) {
	f := func(a int32) bool {
		x, y := Int(int64(a)), Float(float64(a))
		return x.IdenticalTo(y) && x.Hash() == y.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatSpecialValues(t *testing.T) {
	inf := Float(math.Inf(1))
	if c, ts := Compare(inf, Float(1e300)); ts != True || c != 1 {
		t.Fatal("inf compare")
	}
	// NaN: NaN is not less, not greater, compares as equal-ish via cmpFloat
	// default branch; just ensure no panic and hash stability.
	nan := Float(math.NaN())
	_ = nan.Hash()
}
