// Package rel provides the relational kernel shared by every layer of the
// engine: data types, typed values with SQL three-valued-logic comparisons,
// rows, and relation schemas.
package rel

import "fmt"

// DataType enumerates the column types supported by the engine.
type DataType int

const (
	// TypeUnknown is the zero value; it appears only transiently during
	// planning before types are resolved.
	TypeUnknown DataType = iota
	// TypeBool is a SQL BOOLEAN.
	TypeBool
	// TypeInt is a 64-bit signed integer (SQL INTEGER/BIGINT).
	TypeInt
	// TypeFloat is a 64-bit IEEE float (SQL DOUBLE/REAL).
	TypeFloat
	// TypeText is a variable-length UTF-8 string (SQL TEXT/VARCHAR).
	TypeText
)

// String returns the SQL spelling of the type.
func (t DataType) String() string {
	switch t {
	case TypeBool:
		return "BOOL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	default:
		return "UNKNOWN"
	}
}

// ParseDataType maps a SQL type name (case-insensitive) to a DataType.
// It accepts the common aliases so that schemas written by hand parse
// naturally.
func ParseDataType(name string) (DataType, error) {
	switch normalizeTypeName(name) {
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL", "DECIMAL", "NUMERIC":
		return TypeFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return TypeText, nil
	default:
		return TypeUnknown, fmt.Errorf("rel: unknown data type %q", name)
	}
}

func normalizeTypeName(name string) string {
	b := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '(' { // strip length suffix as in VARCHAR(30)
			break
		}
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		b = append(b, c)
	}
	return string(b)
}

// Numeric reports whether t is an arithmetic type.
func (t DataType) Numeric() bool { return t == TypeInt || t == TypeFloat }

// CommonType returns the type that both a and b can be coerced to for
// comparison or arithmetic, following the usual SQL promotion rules
// (INT + FLOAT -> FLOAT). It returns TypeUnknown when the types are
// incompatible.
func CommonType(a, b DataType) DataType {
	if a == b {
		return a
	}
	if a == TypeUnknown {
		return b
	}
	if b == TypeUnknown {
		return a
	}
	if a.Numeric() && b.Numeric() {
		return TypeFloat
	}
	// Text compares with anything by coercing the other side to text; this
	// mirrors the lenient behaviour needed when rows come from an LLM.
	if a == TypeText || b == TypeText {
		return TypeText
	}
	return TypeUnknown
}
