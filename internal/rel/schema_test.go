package rel

import "testing"

func demoSchema() Schema {
	return NewSchema(
		Column{Name: "Name", Type: TypeText, Table: "Country", Key: true},
		Column{Name: "capital", Type: TypeText, Table: "country"},
		Column{Name: "population", Type: TypeInt, Table: "country"},
	)
}

func TestNewSchemaLowercases(t *testing.T) {
	s := demoSchema()
	if s.Col(0).Name != "name" || s.Col(0).Table != "country" {
		t.Fatalf("lowercasing failed: %+v", s.Col(0))
	}
}

func TestResolve(t *testing.T) {
	s := demoSchema()
	i, err := s.Resolve("", "capital")
	if err != nil || i != 1 {
		t.Fatalf("resolve capital: %d %v", i, err)
	}
	i, err = s.Resolve("country", "POPULATION")
	if err != nil || i != 2 {
		t.Fatalf("resolve qualified: %d %v", i, err)
	}
	if _, err := s.Resolve("", "missing"); err == nil {
		t.Fatal("want error for missing column")
	}
	if _, err := s.Resolve("other", "name"); err == nil {
		t.Fatal("want error for wrong table")
	}
}

func TestResolveAmbiguous(t *testing.T) {
	s := NewSchema(
		Column{Name: "id", Table: "a", Type: TypeInt},
		Column{Name: "id", Table: "b", Type: TypeInt},
	)
	if _, err := s.Resolve("", "id"); err == nil {
		t.Fatal("ambiguous reference must error")
	}
	if i, err := s.Resolve("b", "id"); err != nil || i != 1 {
		t.Fatalf("qualified disambiguation: %d %v", i, err)
	}
}

func TestKeyIndexes(t *testing.T) {
	s := demoSchema()
	k := s.KeyIndexes()
	if len(k) != 1 || k[0] != 0 {
		t.Fatalf("key indexes: %v", k)
	}
	noKey := NewSchema(
		Column{Name: "a", Type: TypeInt},
		Column{Name: "b", Type: TypeInt},
	)
	k = noKey.KeyIndexes()
	if len(k) != 1 || k[0] != 0 {
		t.Fatalf("default key must be [0], got %v", k)
	}
}

func TestRenameAndConcat(t *testing.T) {
	s := demoSchema().Rename("c")
	for _, c := range s.Columns {
		if c.Table != "c" {
			t.Fatalf("rename failed: %+v", c)
		}
	}
	both := s.Concat(demoSchema())
	if both.Len() != 6 {
		t.Fatalf("concat len: %d", both.Len())
	}
	// original untouched
	if demoSchema().Col(0).Table != "country" {
		t.Fatal("Rename must not mutate the original")
	}
}

func TestRowKeyCanonicalisation(t *testing.T) {
	r1 := Row{Text("France"), Int(68)}
	r2 := Row{Text("  france "), Float(68.0)}
	if r1.AllKey() != r2.AllKey() {
		t.Fatalf("canonical keys differ: %q vs %q", r1.AllKey(), r2.AllKey())
	}
	r3 := Row{Text("France"), Int(69)}
	if r1.AllKey() == r3.AllKey() {
		t.Fatal("distinct rows must get distinct keys")
	}
	withNull := Row{Null(), Int(1)}
	if withNull.Key([]int{0}) != (Row{NullOf(TypeText), Int(2)}).Key([]int{0}) {
		t.Fatal("nulls must share a key")
	}
}

func TestRowCloneConcat(t *testing.T) {
	r := Row{Int(1), Int(2)}
	c := r.Clone()
	c[0] = Int(9)
	if r[0].AsInt() != 1 {
		t.Fatal("clone aliases original")
	}
	j := r.Concat(Row{Int(3)})
	if len(j) != 3 || j[2].AsInt() != 3 {
		t.Fatalf("concat: %v", j)
	}
}

func TestSchemaStringAndNames(t *testing.T) {
	s := demoSchema()
	want := "(country.name TEXT, country.capital TEXT, country.population INT)"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q", got)
	}
	n := s.Names()
	if len(n) != 3 || n[2] != "population" {
		t.Fatalf("names: %v", n)
	}
	if s.IndexOf("CAPITAL") != 1 || s.IndexOf("zz") != -1 {
		t.Fatal("IndexOf failed")
	}
}
