package rel

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
)

// Value is a typed SQL value. The zero Value is NULL.
//
// Value is a small immutable struct passed by value; rows are []Value.
type Value struct {
	typ DataType
	// null is folded into typ==TypeUnknown-with-notNull=false? No: we keep
	// an explicit flag so NULLs retain their declared type where known.
	notNull bool
	i       int64
	f       float64
	s       string
	b       bool
}

// Null returns the untyped NULL value.
func Null() Value { return Value{} }

// NullOf returns a NULL that remembers its column type.
func NullOf(t DataType) Value { return Value{typ: t} }

// Int returns an INT value.
func Int(v int64) Value { return Value{typ: TypeInt, notNull: true, i: v} }

// Float returns a FLOAT value.
func Float(v float64) Value { return Value{typ: TypeFloat, notNull: true, f: v} }

// Text returns a TEXT value.
func Text(v string) Value { return Value{typ: TypeText, notNull: true, s: v} }

// Bool returns a BOOL value.
func Bool(v bool) Value { return Value{typ: TypeBool, notNull: true, b: v} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return !v.notNull }

// Type returns the value's data type (the declared type for typed NULLs,
// TypeUnknown for the bare NULL).
func (v Value) Type() DataType { return v.typ }

// AsInt returns the value as int64. Callers must ensure the type.
func (v Value) AsInt() int64 {
	if v.typ == TypeFloat {
		return int64(v.f)
	}
	return v.i
}

// AsFloat returns the value as float64, promoting INT.
func (v Value) AsFloat() float64 {
	if v.typ == TypeInt {
		return float64(v.i)
	}
	return v.f
}

// AsText returns the value as string. For non-text values it renders them.
func (v Value) AsText() string {
	if v.typ == TypeText {
		return v.s
	}
	return v.String()
}

// AsBool returns the value as bool.
func (v Value) AsBool() bool { return v.b }

// String renders the value for display. NULL renders as "NULL".
func (v Value) String() string {
	if v.IsNull() {
		return "NULL"
	}
	switch v.typ {
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeText:
		return v.s
	case TypeBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "NULL"
	}
}

// SQLLiteral renders the value as a SQL literal: text quoted and escaped,
// and FLOAT values always spelled with a decimal point (116.0, not 116) so
// that reparsing preserves the type.
func (v Value) SQLLiteral() string {
	if v.IsNull() {
		return "NULL"
	}
	switch v.typ {
	case TypeText:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case TypeFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && !math.IsNaN(v.f) && math.Abs(v.f) < 1e15 {
			return strconv.FormatFloat(v.f, 'f', 1, 64)
		}
		return v.String()
	default:
		return v.String()
	}
}

// Tristate is the result of a three-valued-logic predicate.
type Tristate int

const (
	// False is SQL FALSE.
	False Tristate = iota
	// True is SQL TRUE.
	True
	// Unknown is SQL UNKNOWN (comparison involving NULL).
	Unknown
)

// ToValue converts a Tristate to a BOOL Value (Unknown -> NULL).
func (t Tristate) ToValue() Value {
	switch t {
	case True:
		return Bool(true)
	case False:
		return Bool(false)
	default:
		return NullOf(TypeBool)
	}
}

// TristateOf converts a BOOL Value to a Tristate (NULL -> Unknown).
func TristateOf(v Value) Tristate {
	if v.IsNull() {
		return Unknown
	}
	if v.AsBool() {
		return True
	}
	return False
}

// And implements 3VL conjunction.
func (t Tristate) And(o Tristate) Tristate {
	if t == False || o == False {
		return False
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return True
}

// Or implements 3VL disjunction.
func (t Tristate) Or(o Tristate) Tristate {
	if t == True || o == True {
		return True
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return False
}

// Not implements 3VL negation.
func (t Tristate) Not() Tristate {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Compare compares two values with SQL semantics. It returns
// (ordering, Unknown-ness): if either side is NULL the Tristate is Unknown
// and the ordering is unspecified. Values of different numeric types are
// promoted; numbers never equal text unless the text parses as that number.
func Compare(a, b Value) (int, Tristate) {
	if a.IsNull() || b.IsNull() {
		return 0, Unknown
	}
	ct := CommonType(a.typ, b.typ)
	switch ct {
	case TypeInt:
		return cmpInt(a.AsInt(), b.AsInt()), True
	case TypeFloat:
		return cmpFloat(a.AsFloat(), b.AsFloat()), True
	case TypeBool:
		av, bv := 0, 0
		if a.b {
			av = 1
		}
		if b.b {
			bv = 1
		}
		return cmpInt(int64(av), int64(bv)), True
	case TypeText:
		// If one side is numeric, try to compare numerically: the lenient
		// path used for LLM-derived text values like "1200".
		if a.typ.Numeric() || b.typ.Numeric() {
			af, aok := toFloat(a)
			bf, bok := toFloat(b)
			if aok && bok {
				return cmpFloat(af, bf), True
			}
		}
		return strings.Compare(a.AsText(), b.AsText()), True
	default:
		return 0, Unknown
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func toFloat(v Value) (float64, bool) {
	switch v.typ {
	case TypeInt:
		return float64(v.i), true
	case TypeFloat:
		return v.f, true
	case TypeText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// Equal reports whether two values are equal under SQL semantics, treating
// NULL = NULL as false (use IdenticalTo for grouping semantics).
func Equal(a, b Value) bool {
	c, t := Compare(a, b)
	return t == True && c == 0
}

// IdenticalTo reports whether two values are indistinguishable, with
// NULL identical to NULL — the semantics used by GROUP BY and DISTINCT.
func (v Value) IdenticalTo(o Value) bool {
	if v.IsNull() && o.IsNull() {
		return true
	}
	if v.IsNull() != o.IsNull() {
		return false
	}
	c, t := Compare(v, o)
	return t == True && c == 0
}

// Hash returns a hash consistent with IdenticalTo: identical values hash
// equally (numeric 2 and 2.0 collide on purpose).
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	if v.IsNull() {
		h.Write([]byte{0})
		return h.Sum64()
	}
	switch v.typ {
	case TypeInt, TypeFloat:
		f := v.AsFloat()
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			// Canonicalise integral floats so 2 and 2.0 hash alike.
			var buf [9]byte
			buf[0] = 1
			u := uint64(int64(f))
			for i := 0; i < 8; i++ {
				buf[1+i] = byte(u >> (8 * i))
			}
			h.Write(buf[:])
		} else {
			var buf [9]byte
			buf[0] = 2
			u := math.Float64bits(f)
			for i := 0; i < 8; i++ {
				buf[1+i] = byte(u >> (8 * i))
			}
			h.Write(buf[:])
		}
	case TypeText:
		h.Write([]byte{3})
		h.Write([]byte(v.s))
	case TypeBool:
		if v.b {
			h.Write([]byte{4, 1})
		} else {
			h.Write([]byte{4, 0})
		}
	}
	return h.Sum64()
}

// Coerce converts v to type t when a sensible conversion exists, otherwise
// returns an error. NULL coerces to a typed NULL of t.
func Coerce(v Value, t DataType) (Value, error) {
	if v.IsNull() {
		return NullOf(t), nil
	}
	if v.typ == t || t == TypeUnknown {
		return v, nil
	}
	switch t {
	case TypeInt:
		switch v.typ {
		case TypeFloat:
			return Int(int64(math.Round(v.f))), nil
		case TypeText:
			if n, err := parseLooseInt(v.s); err == nil {
				return Int(n), nil
			}
			return Value{}, fmt.Errorf("rel: cannot coerce %q to INT", v.s)
		case TypeBool:
			if v.b {
				return Int(1), nil
			}
			return Int(0), nil
		}
	case TypeFloat:
		switch v.typ {
		case TypeInt:
			return Float(float64(v.i)), nil
		case TypeText:
			if f, err := parseLooseFloat(v.s); err == nil {
				return Float(f), nil
			}
			return Value{}, fmt.Errorf("rel: cannot coerce %q to FLOAT", v.s)
		case TypeBool:
			if v.b {
				return Float(1), nil
			}
			return Float(0), nil
		}
	case TypeText:
		return Text(v.String()), nil
	case TypeBool:
		switch v.typ {
		case TypeInt:
			return Bool(v.i != 0), nil
		case TypeFloat:
			return Bool(v.f != 0), nil
		case TypeText:
			switch strings.ToUpper(strings.TrimSpace(v.s)) {
			case "TRUE", "T", "YES", "Y", "1":
				return Bool(true), nil
			case "FALSE", "F", "NO", "N", "0":
				return Bool(false), nil
			}
			return Value{}, fmt.Errorf("rel: cannot coerce %q to BOOL", v.s)
		}
	}
	return Value{}, fmt.Errorf("rel: cannot coerce %s to %s", v.typ, t)
}

// parseLooseInt parses integers with thousands separators ("1,234,567") and
// falls back to rounding float spellings ("3.0", "1.2e3").
func parseLooseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	s = strings.ReplaceAll(s, ",", "")
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && f == math.Trunc(f) {
		return int64(f), nil
	}
	return strconv.ParseInt(s, 10, 64)
}

// parseLooseFloat parses floats with thousands separators.
func parseLooseFloat(s string) (float64, error) {
	s = strings.TrimSpace(s)
	s = strings.ReplaceAll(s, ",", "")
	return strconv.ParseFloat(s, 64)
}

// ParseTyped parses raw text into a Value of the requested type using the
// loose rules (thousand separators etc.). Empty string parses as NULL for
// non-text types.
func ParseTyped(s string, t DataType) (Value, error) {
	trimmed := strings.TrimSpace(s)
	if trimmed == "" && t != TypeText {
		return NullOf(t), nil
	}
	if strings.EqualFold(trimmed, "null") || trimmed == "-" || strings.EqualFold(trimmed, "n/a") || strings.EqualFold(trimmed, "unknown") {
		return NullOf(t), nil
	}
	switch t {
	case TypeText:
		return Text(trimmed), nil
	default:
		return Coerce(Text(trimmed), t)
	}
}
