package rel

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	// Name is the column name (lower-cased at creation for case-insensitive
	// SQL resolution).
	Name string
	// Type is the declared data type.
	Type DataType
	// Table is the (alias-resolved) table the column belongs to; empty for
	// derived columns.
	Table string
	// Key marks the column as part of the primary key. The LLM engine uses
	// key columns to drive entity enumeration and row matching.
	Key bool
	// Desc is a short natural-language description used to verbalise the
	// column in prompts ("population in millions of inhabitants").
	Desc string
}

// QualifiedName returns table.name, or just name when the table is unknown.
func (c Column) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// Schema is an ordered list of columns describing a relation.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema, lower-casing column and table names.
func NewSchema(cols ...Column) Schema {
	out := make([]Column, len(cols))
	for i, c := range cols {
		c.Name = strings.ToLower(c.Name)
		c.Table = strings.ToLower(c.Table)
		out[i] = c
	}
	return Schema{Columns: out}
}

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Columns) }

// Col returns the i'th column.
func (s Schema) Col(i int) Column { return s.Columns[i] }

// Resolve finds the index of a (possibly qualified) column reference.
// It returns an error when the name is missing or ambiguous.
func (s Schema) Resolve(table, name string) (int, error) {
	table = strings.ToLower(table)
	name = strings.ToLower(name)
	found := -1
	for i, c := range s.Columns {
		if c.Name != name {
			continue
		}
		if table != "" && c.Table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("rel: ambiguous column %q", qualified(table, name))
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("rel: unknown column %q", qualified(table, name))
	}
	return found, nil
}

func qualified(table, name string) string {
	if table == "" {
		return name
	}
	return table + "." + name
}

// IndexOf returns the index of the first column with the given unqualified
// name, or -1.
func (s Schema) IndexOf(name string) int {
	name = strings.ToLower(name)
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// KeyIndexes returns the positions of the primary-key columns, in schema
// order. When no column is marked Key, it returns [0] as a pragmatic default
// (first column identifies the entity), matching how virtual LLM tables are
// declared.
func (s Schema) KeyIndexes() []int {
	var idx []int
	for i, c := range s.Columns {
		if c.Key {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 && len(s.Columns) > 0 {
		return []int{0}
	}
	return idx
}

// Rename returns a copy of the schema with every column's table set to alias.
func (s Schema) Rename(alias string) Schema {
	alias = strings.ToLower(alias)
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	for i := range cols {
		cols[i].Table = alias
	}
	return Schema{Columns: cols}
}

// Concat returns the schema of s ++ o (used by joins).
func (s Schema) Concat(o Schema) Schema {
	cols := make([]Column, 0, len(s.Columns)+len(o.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, o.Columns...)
	return Schema{Columns: cols}
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a INT, b TEXT)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.QualifiedName())
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Row is a tuple of values positionally aligned with a Schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns r ++ o as a new row.
func (r Row) Concat(o Row) Row {
	out := make(Row, 0, len(r)+len(o))
	out = append(out, r...)
	out = append(out, o...)
	return out
}

// String renders the row as "(v1, v2, ...)".
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Key renders the projection of r on the given indexes as a canonical string,
// suitable for use as a map key in grouping, dedup and set comparison.
func (r Row) Key(idx []int) string {
	var b strings.Builder
	for n, i := range idx {
		if n > 0 {
			b.WriteByte('\x1f')
		}
		v := r[i]
		if v.IsNull() {
			b.WriteString("\x00NULL")
			continue
		}
		// Canonicalise numerics so 2 and 2.0 group together.
		if v.Type().Numeric() {
			b.WriteString(Float(v.AsFloat()).String())
		} else if v.Type() == TypeText {
			b.WriteString(strings.ToLower(strings.TrimSpace(v.AsText())))
		} else {
			b.WriteString(v.String())
		}
	}
	return b.String()
}

// AllKey returns the canonical key over every column of the row.
func (r Row) AllKey() string {
	idx := make([]int, len(r))
	for i := range idx {
		idx[i] = i
	}
	return r.Key(idx)
}
